// Property tests for the batched multi-subset CI kernel: the batched
// path must be *bit-identical* to the per-subset kernels (packed and
// byte), because the miner's pruning decisions compare p-values against
// alpha and the determinism suite diffs whole DIGs.
#include "causaliot/stats/batch_ci.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "causaliot/stats/cmh.hpp"
#include "causaliot/stats/gsquare.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::stats {
namespace {

using Column = std::vector<std::uint8_t>;

std::vector<Column> random_columns(std::size_t count, std::size_t n,
                                   util::Rng& rng, double ones_fraction) {
  std::vector<Column> columns(count, Column(n));
  for (auto& column : columns) {
    for (auto& value : column) {
      value = static_cast<std::uint8_t>(rng.bernoulli(ones_fraction));
    }
  }
  return columns;
}

std::vector<PackedColumn> pack_all(const std::vector<Column>& columns) {
  std::vector<PackedColumn> packed;
  packed.reserve(columns.size());
  for (const Column& column : columns) packed.emplace_back(column);
  return packed;
}

// Exhaustive bit-for-bit comparison of batched vs per-subset results for
// every (x, Z) drawn from a pool, |Z| = 0..max_level, one statistic.
void expect_batched_matches_per_subset(std::size_t n, std::uint64_t seed,
                                       bool use_cmh) {
  util::Rng rng(seed);
  constexpr std::size_t kColumns = 8;  // pool: y + 7 candidates
  const std::vector<Column> columns = random_columns(kColumns, n, rng, 0.35);
  const std::vector<PackedColumn> packed = pack_all(columns);
  const ColumnId y = 0;
  const GSquareOptions options{0.0};

  BatchCiContext batch({packed.data(), packed.size()}, y);
  CiTestContext context;

  for (std::size_t level = 0; level + 2 <= kColumns; ++level) {
    for (ColumnId x = 1; x < kColumns; ++x) {
      // All |level|-subsets of the remaining columns, encoded as a bitmask
      // over {1..7} \ {x}.
      std::vector<ColumnId> others;
      for (ColumnId c = 1; c < kColumns; ++c) {
        if (c != x) others.push_back(c);
      }
      std::vector<bool> take(others.size(), false);
      std::fill(take.begin(), take.begin() + static_cast<long>(level), true);
      // Iterate combinations via prev_permutation over the selector.
      do {
        std::vector<ColumnId> z_ids;
        std::vector<const PackedColumn*> z_packed;
        std::vector<std::span<const std::uint8_t>> z_raw;
        for (std::size_t i = 0; i < others.size(); ++i) {
          if (!take[i]) continue;
          z_ids.push_back(others[i]);
          z_packed.push_back(&packed[others[i]]);
          z_raw.push_back(columns[others[i]]);
        }
        if (use_cmh) {
          const CmhResult batched = cmh_test(batch, x, z_ids);
          const CmhResult direct =
              cmh_test(packed[x], packed[y], z_packed, context);
          const CmhResult byte_direct =
              cmh_test(columns[x], columns[y], z_raw, context);
          for (const CmhResult& other : {direct, byte_direct}) {
            EXPECT_EQ(batched.statistic, other.statistic);
            EXPECT_EQ(batched.p_value, other.p_value);
            EXPECT_EQ(batched.sample_count, other.sample_count);
            EXPECT_EQ(batched.informative_strata, other.informative_strata);
          }
        } else {
          const GSquareResult batched =
              g_square_test(batch, x, z_ids, options);
          const GSquareResult direct = g_square_test(
              packed[x], packed[y], z_packed, options, context);
          const GSquareResult byte_direct =
              g_square_test(columns[x], columns[y], z_raw, options, context);
          for (const GSquareResult& other : {direct, byte_direct}) {
            EXPECT_EQ(batched.statistic, other.statistic);
            EXPECT_EQ(batched.dof, other.dof);
            EXPECT_EQ(batched.p_value, other.p_value);
            EXPECT_EQ(batched.sample_count, other.sample_count);
            EXPECT_EQ(batched.skipped_insufficient_data,
                      other.skipped_insufficient_data);
          }
        }
      } while (std::prev_permutation(take.begin(), take.end()));
    }
  }
}

TEST(BatchCi, GSquareMatchesPerSubsetBitForBit) {
  // Odd length exercises the partial tail word of the packed columns.
  expect_batched_matches_per_subset(997, 11, /*use_cmh=*/false);
  expect_batched_matches_per_subset(2048, 12, /*use_cmh=*/false);
}

TEST(BatchCi, CmhMatchesPerSubsetBitForBit) {
  expect_batched_matches_per_subset(997, 21, /*use_cmh=*/true);
  expect_batched_matches_per_subset(1500, 22, /*use_cmh=*/true);
}

// Satellite (PR 6): the exhaustive batched-vs-per-subset equivalence must
// hold under every compiled-in SIMD backend the host can execute, for
// both statistics — the wide kernels sit under both code paths.
TEST(BatchCi, EquivalenceHoldsUnderEverySimdBackend) {
  const simd::Backend before = simd::chosen();
  for (const simd::Backend backend : simd::available_backends()) {
    SCOPED_TRACE(std::string("backend ") +
                 std::string(simd::backend_name(backend)));
    ASSERT_TRUE(simd::force_backend(backend));
    expect_batched_matches_per_subset(997, 11, /*use_cmh=*/false);
    expect_batched_matches_per_subset(997, 21, /*use_cmh=*/true);
  }
  ASSERT_TRUE(simd::force_backend(before));
}

// Every (x, Z) sweep statistic, serialized for cross-backend comparison.
std::vector<double> sweep_statistics(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  constexpr std::size_t kColumns = 8;
  const std::vector<Column> columns = random_columns(kColumns, n, rng, 0.35);
  const std::vector<PackedColumn> packed = pack_all(columns);
  BatchCiContext batch({packed.data(), packed.size()}, 0);
  CiTestContext context;
  std::vector<double> out;
  for (std::size_t level = 0; level <= 3; ++level) {
    for (ColumnId x = 1; x < kColumns; ++x) {
      std::vector<ColumnId> others;
      for (ColumnId c = 1; c < kColumns; ++c) {
        if (c != x) others.push_back(c);
      }
      std::vector<bool> take(others.size(), false);
      std::fill(take.begin(), take.begin() + static_cast<long>(level), true);
      do {
        std::vector<ColumnId> z_ids;
        std::vector<const PackedColumn*> z_packed;
        for (std::size_t i = 0; i < others.size(); ++i) {
          if (!take[i]) continue;
          z_ids.push_back(others[i]);
          z_packed.push_back(&packed[others[i]]);
        }
        const GSquareResult batched = g_square_test(batch, x, z_ids, {});
        const GSquareResult direct =
            g_square_test(packed[x], packed[0], z_packed, {}, context);
        out.push_back(batched.statistic);
        out.push_back(batched.p_value);
        out.push_back(static_cast<double>(batched.sample_count));
        out.push_back(direct.statistic);
        out.push_back(direct.p_value);
      } while (std::prev_permutation(take.begin(), take.end()));
    }
  }
  return out;
}

// Cross-backend bit-identity: the full statistic stream computed under a
// wide backend must equal the scalar stream exactly (EXPECT_EQ on
// doubles — not approximate), because miner pruning compares p-values
// against alpha and any drift would change skeletons.
TEST(BatchCi, SimdBackendsProduceBitIdenticalStatistics) {
  const simd::Backend before = simd::chosen();
  ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
  const std::vector<double> reference = sweep_statistics(1023, 81);
  for (const simd::Backend backend : simd::available_backends()) {
    SCOPED_TRACE(std::string("backend ") +
                 std::string(simd::backend_name(backend)));
    ASSERT_TRUE(simd::force_backend(backend));
    EXPECT_EQ(sweep_statistics(1023, 81), reference);
  }
  ASSERT_TRUE(simd::force_backend(before));
}

TEST(BatchCi, SmallSampleGuardSkipsWithoutCounting) {
  util::Rng rng(31);
  const std::vector<Column> columns = random_columns(4, 100, rng, 0.5);
  const std::vector<PackedColumn> packed = pack_all(columns);
  BatchCiContext batch({packed.data(), packed.size()}, 0);
  const std::size_t passes_before = batch.pass_count();
  const GSquareOptions guard{100.0};  // 100 samples per dof: |Z|=2 needs 400
  const ColumnId z_ids[2] = {2, 3};
  const GSquareResult result = g_square_test(batch, 1, z_ids, guard);
  EXPECT_TRUE(result.skipped_insufficient_data);
  // The preamble must fire before any counting happens.
  EXPECT_EQ(batch.pass_count(), passes_before);
}

TEST(BatchCi, MemoizationSharesPassesAcrossSubsets) {
  util::Rng rng(41);
  const std::vector<Column> columns = random_columns(6, 512, rng, 0.4);
  const std::vector<PackedColumn> packed = pack_all(columns);
  BatchCiContext batch({packed.data(), packed.size()}, 0);

  std::vector<ColumnId> xs = {1, 2, 3, 4, 5};
  batch.prepare_marginals(xs);
  const std::size_t after_prepare = batch.pass_count();
  // All five marginal tables in two multi-key passes (batch width 4)
  // plus the constructor's y pass.
  EXPECT_EQ(after_prepare, 3u);

  // Level-0 tests consume the warm singles: no further passes.
  for (const ColumnId x : xs) {
    (void)batch.count_strata(x, {});
  }
  EXPECT_EQ(batch.pass_count(), after_prepare);

  // A level-1 test needs exactly one fused pass for the new pair {z, x}.
  const ColumnId z_one[1] = {2};
  (void)batch.count_strata(1, z_one);
  EXPECT_EQ(batch.pass_count(), after_prepare + 1);
  // Repeating it is free, and so is the symmetric orientation {x, z}
  // (P-sets are unordered).
  (void)batch.count_strata(1, z_one);
  const ColumnId z_sym[1] = {1};
  (void)batch.count_strata(2, z_sym);
  EXPECT_EQ(batch.pass_count(), after_prepare + 1);

  // reset_cache drops the memo: the same test pays its passes again.
  batch.reset_cache();
  (void)batch.count_strata(1, z_one);
  EXPECT_GT(batch.pass_count(), after_prepare + 1);
}

TEST(BatchCi, ConditioningOrderPermutesStrataNotCounts) {
  // The stratum key follows the *given* z order (bit j = z[j]), exactly
  // like the per-subset kernels: permuting z permutes keys.
  util::Rng rng(51);
  const std::vector<Column> columns = random_columns(4, 700, rng, 0.45);
  const std::vector<PackedColumn> packed = pack_all(columns);
  BatchCiContext batch({packed.data(), packed.size()}, 0);
  CiTestContext context;

  const ColumnId forward[2] = {2, 3};
  const ColumnId backward[2] = {3, 2};
  const std::vector<std::uint64_t> counts_fwd(
      batch.count_strata(1, forward).begin(),
      batch.count_strata(1, forward).end());
  const std::vector<std::uint64_t> counts_bwd(
      batch.count_strata(1, backward).begin(),
      batch.count_strata(1, backward).end());
  const PackedColumn* z_fwd[2] = {&packed[2], &packed[3]};
  const StratumCounts direct =
      context.count_strata(packed[1], packed[0], z_fwd);
  ASSERT_TRUE(direct.dense);
  ASSERT_EQ(counts_fwd.size(), direct.counts.size());
  for (std::size_t i = 0; i < counts_fwd.size(); ++i) {
    EXPECT_EQ(counts_fwd[i], direct.counts[i]);
  }
  // Swapping z swaps key bits 0 and 1: key 1 <-> key 2.
  const std::size_t remap[4] = {0, 2, 1, 3};
  for (std::size_t key = 0; key < 4; ++key) {
    for (std::size_t cell = 0; cell < 4; ++cell) {
      EXPECT_EQ(counts_bwd[key * 4 + cell],
                counts_fwd[remap[key] * 4 + cell]);
    }
  }
}

// Satellite regression test: CiTestContext byte-kernel reuse across
// differently-sized conditioning sets. The sparse path (|Z| above the
// dense limit) stamps touched keys lazily instead of zero-filling all
// 4 * 2^|Z| cells; stale cells from a previous larger call must never
// leak into a later call's view.
TEST(CiTestContext, ByteKernelReuseAcrossSizesIsIdentical) {
  util::Rng rng(61);
  const std::size_t n = 3000;
  constexpr std::size_t kBig = 9;    // 512 strata: sparse path
  constexpr std::size_t kSmall = 2;  // 4 strata: dense path
  const std::vector<Column> columns = random_columns(kBig + 2, n, rng, 0.5);

  auto z_view = [&](std::size_t count) {
    std::vector<std::span<const std::uint8_t>> z;
    for (std::size_t i = 0; i < count; ++i) z.push_back(columns[2 + i]);
    return z;
  };

  // Reference: fresh context per call.
  auto snapshot = [](const StratumCounts& strata) {
    std::vector<std::uint64_t> flat;
    if (strata.dense) {
      flat.assign(strata.counts.begin(), strata.counts.end());
    } else {
      for (const std::uint32_t key : strata.keys) {
        flat.push_back(key);
        for (std::size_t c = 0; c < 4; ++c) {
          flat.push_back(strata.counts[static_cast<std::size_t>(key) * 4 + c]);
        }
      }
    }
    return flat;
  };

  CiTestContext reused;
  for (const std::size_t size : {kBig, kSmall, kBig, kSmall, kBig}) {
    CiTestContext fresh;
    const auto z = z_view(size);
    const auto expected = snapshot(fresh.count_strata(columns[0], columns[1],
                                                      z));
    const auto actual = snapshot(reused.count_strata(columns[0], columns[1],
                                                     z));
    EXPECT_EQ(expected, actual) << "size " << size;
  }

  // And the statistics built on top agree with a fresh context.
  CiTestContext fresh;
  const auto z = z_view(kBig);
  const GSquareResult a = g_square_test(columns[0], columns[1], z, {}, reused);
  const GSquareResult b = g_square_test(columns[0], columns[1], z, {}, fresh);
  EXPECT_EQ(a.statistic, b.statistic);
  EXPECT_EQ(a.dof, b.dof);
  EXPECT_EQ(a.p_value, b.p_value);
}

TEST(BatchCi, EmptyUniverseRejectedAndZeroSamplesShortCircuit) {
  Column empty_column;
  std::vector<PackedColumn> packed;
  packed.emplace_back(empty_column);
  packed.emplace_back(empty_column);
  BatchCiContext batch({packed.data(), packed.size()}, 0);
  EXPECT_EQ(batch.sample_count(), 0u);
  const GSquareResult g = g_square_test(batch, 1, {});
  EXPECT_EQ(g.sample_count, 0u);
  EXPECT_EQ(g.p_value, 1.0);
  const CmhResult m = cmh_test(batch, 1, {});
  EXPECT_EQ(m.sample_count, 0u);
}

}  // namespace
}  // namespace causaliot::stats
