#include "causaliot/stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "causaliot/stats/metrics.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::stats {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), values.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 denominator: 32 / 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats stats;
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) stats.add(1e9 + rng.normal(0.0, 1.0));
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RunningStats, WithinSigma) {
  RunningStats stats;
  for (double v : {8.0, 10.0, 12.0}) stats.add(v);  // mean 10, sd 2
  EXPECT_TRUE(stats.within_sigma(13.0, 3.0));
  EXPECT_TRUE(stats.within_sigma(10.0, 0.5));
  EXPECT_FALSE(stats.within_sigma(17.0, 3.0));
  EXPECT_FALSE(stats.within_sigma(3.0, 3.0));
}

TEST(Percentile, KnownValues) {
  const std::vector<double> values{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 35.0);
  // Linear interpolation: rank = 0.25 * 4 = 1 -> exactly 20.
  EXPECT_DOUBLE_EQ(percentile(values, 25), 20.0);
  // rank = 0.4 * 4 = 1.6 -> 20 + 0.6 * 15 = 29.
  EXPECT_DOUBLE_EQ(percentile(values, 40), 29.0);
}

TEST(Percentile, UnsortedInputIsSorted) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{9, 1, 5}, 50), 5.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7}, 99), 7.0);
}

TEST(PercentileSorted, AgreesWithPercentile) {
  util::Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.uniform_real(0, 100));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_DOUBLE_EQ(percentile(values, q), percentile_sorted(sorted, q));
  }
}

// Property: percentile is monotone in q.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, NonDecreasingInQ) {
  util::Rng rng(GetParam());
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(0, 10));
  std::sort(values.begin(), values.end());
  double previous = percentile_sorted(values, 0);
  for (double q = 1; q <= 100; q += 1) {
    const double current = percentile_sorted(values, q);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1ULL, 2ULL, 3ULL));

TEST(ConfusionCounts, BasicMath) {
  ConfusionCounts counts;
  // 8 TP, 2 FP, 85 TN, 5 FN.
  for (int i = 0; i < 8; ++i) counts.add(true, true);
  for (int i = 0; i < 2; ++i) counts.add(true, false);
  for (int i = 0; i < 85; ++i) counts.add(false, false);
  for (int i = 0; i < 5; ++i) counts.add(false, true);
  EXPECT_EQ(counts.total(), 100u);
  EXPECT_DOUBLE_EQ(counts.precision(), 0.8);
  EXPECT_NEAR(counts.recall(), 8.0 / 13.0, 1e-12);
  EXPECT_DOUBLE_EQ(counts.accuracy(), 0.93);
  EXPECT_NEAR(counts.false_positive_rate(), 2.0 / 87.0, 1e-12);
  const double p = 0.8;
  const double r = 8.0 / 13.0;
  EXPECT_NEAR(counts.f1(), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionCounts, DegenerateCasesAreZeroNotNan) {
  ConfusionCounts counts;
  EXPECT_DOUBLE_EQ(counts.precision(), 0.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 0.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 0.0);
  EXPECT_DOUBLE_EQ(counts.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(counts.false_positive_rate(), 0.0);
}

TEST(ConfusionCounts, SummaryFormat) {
  ConfusionCounts counts;
  counts.add(true, true);
  EXPECT_EQ(counts.summary(), "P=1.000 R=1.000 F1=1.000 Acc=1.000");
}

}  // namespace
}  // namespace causaliot::stats
