#include "causaliot/stats/cmh.hpp"

#include <gtest/gtest.h>

#include "causaliot/util/rng.hpp"

namespace causaliot::stats {
namespace {

using Column = std::vector<std::uint8_t>;

Column random_column(std::size_t n, util::Rng& rng) {
  Column column(n);
  for (auto& value : column) {
    value = static_cast<std::uint8_t>(rng.uniform(2));
  }
  return column;
}

TEST(Cmh, IndependentColumnsNotRejected) {
  util::Rng rng(1);
  const Column x = random_column(5000, rng);
  const Column y = random_column(5000, rng);
  EXPECT_GT(cmh_test(x, y).p_value, 0.001);
}

TEST(Cmh, DependentColumnsRejected) {
  util::Rng rng(2);
  const Column x = random_column(3000, rng);
  Column y = x;
  for (auto& value : y) {
    if (rng.bernoulli(0.2)) value ^= 1;
  }
  const CmhResult result = cmh_test(x, y);
  EXPECT_LT(result.p_value, 1e-10);
  EXPECT_GT(result.statistic, 50.0);
}

TEST(Cmh, MediatorScreensOffChain) {
  util::Rng rng(3);
  const std::size_t n = 20000;
  Column x(n);
  Column z(n);
  Column y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    z[i] = rng.bernoulli(0.9) ? x[i] : static_cast<std::uint8_t>(1 - x[i]);
    y[i] = rng.bernoulli(0.9) ? z[i] : static_cast<std::uint8_t>(1 - z[i]);
  }
  EXPECT_LT(cmh_test(x, y).p_value, 1e-10);
  const std::vector<std::span<const std::uint8_t>> given{z};
  EXPECT_GT(cmh_test(x, y, given).p_value, 0.001);
}

TEST(Cmh, PoolsPowerAcrossSparseStrata) {
  // A weak but direction-consistent effect spread over 4 strata of a
  // 2-variable conditioning set: each stratum alone is thin, the pooled
  // CMH statistic still finds the dependence.
  util::Rng rng(4);
  const std::size_t n = 1200;
  Column x(n);
  Column y(n);
  std::vector<Column> z(2, Column(n));
  for (std::size_t i = 0; i < n; ++i) {
    z[0][i] = static_cast<std::uint8_t>(rng.uniform(2));
    z[1][i] = static_cast<std::uint8_t>(rng.uniform(2));
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    y[i] = rng.bernoulli(0.75) ? x[i] : static_cast<std::uint8_t>(1 - x[i]);
  }
  const std::vector<std::span<const std::uint8_t>> given(z.begin(), z.end());
  const CmhResult result = cmh_test(x, y, given);
  EXPECT_EQ(result.informative_strata, 4u);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(Cmh, DegenerateInputsAreVacuous) {
  const Column empty;
  EXPECT_DOUBLE_EQ(cmh_test(empty, empty).p_value, 1.0);
  const Column constant(100, 1);
  util::Rng rng(5);
  const Column y = random_column(100, rng);
  const CmhResult result = cmh_test(constant, y);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_EQ(result.informative_strata, 0u);
}

TEST(Cmh, StatisticMatchesHandComputedTable) {
  // Single stratum, table a=30 b=10 c=10 d=30 (n=80).
  Column x;
  Column y;
  const auto push = [&](std::uint8_t xv, std::uint8_t yv, int count) {
    for (int i = 0; i < count; ++i) {
      x.push_back(xv);
      y.push_back(yv);
    }
  };
  push(1, 1, 30);
  push(1, 0, 10);
  push(0, 1, 10);
  push(0, 0, 30);
  const CmhResult result = cmh_test(x, y);
  // E[a] = 40*40/80 = 20; Var = 40*40*40*40/(80^2*79) = 5.0633;
  // CMH = (|30-20| - 0.5)^2 / Var = 90.25 / 5.0633 = 17.825.
  EXPECT_NEAR(result.statistic, 17.825, 0.01);
  EXPECT_LT(result.p_value, 1e-4);
}

TEST(Cmh, CalibrationUnderNull) {
  util::Rng rng(6);
  int rejections = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const Column x = random_column(400, rng);
    const Column y = random_column(400, rng);
    rejections += cmh_test(x, y).p_value <= 0.05;
  }
  // Continuity correction makes the test slightly conservative.
  EXPECT_LE(static_cast<double>(rejections) / trials, 0.08);
}

}  // namespace
}  // namespace causaliot::stats
