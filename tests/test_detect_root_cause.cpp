// Root-cause attribution unit tests on hand-built DIGs and reports: the
// walk must credit the right devices (linear chain, fork, collider with
// a shared upstream cause), terminate on cyclic graphs without the depth
// cap doing the work, and break score ties by device id so the ranking
// is reproducible bit-for-bit.
#include <gtest/gtest.h>

#include <vector>

#include "causaliot/detect/root_cause.hpp"

namespace causaliot::detect {
namespace {

using graph::LaggedNode;

AnomalyEntry make_entry(telemetry::DeviceId device, double score,
                        std::vector<LaggedNode> causes = {},
                        std::vector<std::uint8_t> cause_values = {}) {
  AnomalyEntry entry;
  entry.event.device = device;
  entry.event.state = 1;  // cause value 0 = mismatch, 1 = match
  entry.score = score;
  entry.causes = std::move(causes);
  entry.cause_values = std::move(cause_values);
  return entry;
}

TEST(RootCause, EmptyReportYieldsEmptyAttribution) {
  const RootCauseAttribution out = attribute_root_cause({}, nullptr);
  EXPECT_TRUE(out.ranked.empty());
  EXPECT_EQ(out.edges_walked, 0u);
}

TEST(RootCause, HeadWithNoCausesBlamesItself) {
  AnomalyReport report;
  report.entries.push_back(make_entry(3, 0.9));
  const RootCauseAttribution out = attribute_root_cause(report, nullptr);
  ASSERT_EQ(out.ranked.size(), 1u);
  EXPECT_EQ(out.top().device, 3u);
  EXPECT_TRUE(out.top().flagged);
  EXPECT_TRUE(out.top().path.empty());  // depth-0 seed, no edges walked
  RootCauseConfig config;
  EXPECT_DOUBLE_EQ(out.top().score, 0.9 * config.flagged_boost);
}

TEST(RootCause, LinearChainWalksBackToTheRoot) {
  // DIG: A(0) -> B(1) -> C(2). The report chains C (head) and B; A is
  // only reachable through B's recorded context.
  graph::InteractionGraph dig(3, 1);
  dig.set_causes(1, {{0, 1}});
  dig.set_causes(2, {{1, 1}});

  AnomalyReport report;
  report.entries.push_back(make_entry(2, 0.9, {{1, 1}}, {0}));
  report.entries.push_back(make_entry(1, 0.8, {{0, 1}}, {0}));
  const RootCauseAttribution out = attribute_root_cause(report, &dig);

  // All three devices on the causal walk are candidates, ranked
  // head-first: C seeds itself with full position weight, B collects
  // the head's hop plus its own seed, A only the decayed tail.
  ASSERT_EQ(out.ranked.size(), 3u);
  EXPECT_EQ(out.ranked[0].device, 2u);
  EXPECT_EQ(out.ranked[1].device, 1u);
  EXPECT_EQ(out.ranked[2].device, 0u);
  EXPECT_TRUE(out.ranked[0].flagged);
  EXPECT_TRUE(out.ranked[1].flagged);
  EXPECT_FALSE(out.ranked[2].flagged);

  RootCauseConfig config;
  // C: seed 1.0 * 0.9, flagged. B: head hop (decay * head score,
  // mismatch keeps full weight) + its own seed at position 1/2, flagged.
  // A: the two walks that reach it, unboosted.
  EXPECT_DOUBLE_EQ(out.ranked[0].score, 0.9 * config.flagged_boost);
  const double head_hop = 0.5 * 0.9;                    // C -> B
  const double b_score = (head_hop + 0.5 * 0.8) * config.flagged_boost;
  EXPECT_DOUBLE_EQ(out.ranked[1].score, b_score);
  const double a_via_head = head_hop * (0.5 * 0.8);     // C -> B -> A
  const double a_via_chain = 0.5 * (0.5 * 0.8);         // B -> A
  EXPECT_DOUBLE_EQ(out.ranked[2].score, a_via_head + a_via_chain);

  // A's strongest single walk is the short one from the chain entry.
  const std::vector<RootCauseStep> want_path = {{1, 0, 1}};
  EXPECT_EQ(out.ranked[2].path, want_path);
  EXPECT_EQ(out.edges_walked, 3u);  // C->B, C->B->A, B->A
}

TEST(RootCause, ForkPrefersTheMismatchedCause) {
  // Head C(2) has two recorded causes: A(0) disagrees with the observed
  // effect state, B(1) agrees. The "plug activated with nobody present"
  // pattern must outrank the unsurprising context.
  graph::InteractionGraph dig(3, 1);
  dig.set_causes(2, {{0, 1}, {1, 1}});

  AnomalyReport report;
  report.entries.push_back(
      make_entry(2, 0.8, {{0, 1}, {1, 1}}, {/*A=*/0, /*B=*/1}));
  const RootCauseAttribution out = attribute_root_cause(report, &dig);

  ASSERT_EQ(out.ranked.size(), 3u);
  EXPECT_EQ(out.ranked[0].device, 2u);  // flagged head still leads
  EXPECT_EQ(out.ranked[1].device, 0u);  // mismatch: full hop weight
  EXPECT_EQ(out.ranked[2].device, 1u);  // match: discounted
  RootCauseConfig config;
  EXPECT_DOUBLE_EQ(out.ranked[1].score, 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(out.ranked[2].score,
                   0.5 * 0.8 * config.context_match_discount);
}

TEST(RootCause, ColliderAccumulatesSharedCauseAcrossBranches) {
  // R(0) causes both D(1) and E(2); R itself has a structural-only
  // upstream S(3) the report never observed. Both report entries blame
  // R, and the walk continues past R through the DIG alone to S.
  graph::InteractionGraph dig(4, 1);
  dig.set_causes(1, {{0, 1}});
  dig.set_causes(2, {{0, 1}});
  dig.set_causes(0, {{3, 1}});

  AnomalyReport report;
  report.entries.push_back(make_entry(1, 0.9, {{0, 1}}, {0}));
  report.entries.push_back(make_entry(2, 0.6, {{0, 1}}, {0}));
  const RootCauseAttribution out = attribute_root_cause(report, &dig);

  ASSERT_EQ(out.ranked.size(), 4u);
  RootCauseConfig config;
  const double via_d = 1.0 * (0.5 * 0.9);
  const double via_e = 0.5 * (0.5 * 0.6);
  const auto find = [&](telemetry::DeviceId device) {
    for (const RootCauseCandidate& candidate : out.ranked) {
      if (candidate.device == device) return candidate;
    }
    return RootCauseCandidate{};
  };
  EXPECT_DOUBLE_EQ(find(0).score, via_d + via_e);
  EXPECT_FALSE(find(0).flagged);
  // S is two hops out on both branches; each continuation pays the
  // structural hop because R has no recorded context of its own.
  const double structural_hop = 0.5 * config.structural_weight;
  EXPECT_DOUBLE_EQ(find(3).score, (via_d + via_e) * structural_hop);
  ASSERT_EQ(find(3).path.size(), 2u);
  EXPECT_EQ(find(3).path[1], (RootCauseStep{0, 3, 1}));
}

TEST(RootCause, CyclicGraphTerminatesWithoutTheDepthCap) {
  // A(0) <-> B(1) at lag 1. With max_depth far beyond the cycle length,
  // only the per-walk visited guard keeps the walk finite.
  graph::InteractionGraph dig(2, 1);
  dig.set_causes(0, {{1, 1}});
  dig.set_causes(1, {{0, 1}});

  AnomalyReport report;
  report.entries.push_back(make_entry(0, 0.9, {{1, 1}}, {0}));
  RootCauseConfig config;
  config.max_depth = 64;
  const RootCauseAttribution out =
      attribute_root_cause(report, &dig, config);

  // One backward edge A->B; B's structural continuation back to A is
  // blocked because A is already on the walk.
  EXPECT_EQ(out.edges_walked, 1u);
  ASSERT_EQ(out.ranked.size(), 2u);
  EXPECT_EQ(out.ranked[0].device, 0u);
  EXPECT_EQ(out.ranked[1].device, 1u);
}

TEST(RootCause, EqualScoresTieBreakByDeviceId) {
  // Two causes with identical hop weight (both mismatch) must rank in
  // ascending device-id order, and the whole attribution must reproduce
  // exactly on a second call.
  graph::InteractionGraph dig(3, 1);
  dig.set_causes(2, {{0, 1}, {1, 1}});

  AnomalyReport report;
  report.entries.push_back(make_entry(2, 0.8, {{0, 1}, {1, 1}}, {0, 0}));
  const RootCauseAttribution first = attribute_root_cause(report, &dig);
  ASSERT_EQ(first.ranked.size(), 3u);
  EXPECT_DOUBLE_EQ(first.ranked[1].score, first.ranked[2].score);
  EXPECT_EQ(first.ranked[1].device, 0u);
  EXPECT_EQ(first.ranked[2].device, 1u);

  const RootCauseAttribution second = attribute_root_cause(report, &dig);
  ASSERT_EQ(second.ranked.size(), first.ranked.size());
  for (std::size_t i = 0; i < first.ranked.size(); ++i) {
    EXPECT_EQ(second.ranked[i].device, first.ranked[i].device);
    EXPECT_EQ(second.ranked[i].score, first.ranked[i].score);  // bitwise
    EXPECT_EQ(second.ranked[i].flagged, first.ranked[i].flagged);
    EXPECT_EQ(second.ranked[i].path, first.ranked[i].path);
  }
  EXPECT_EQ(second.edges_walked, first.edges_walked);
}

TEST(RootCause, MaxCandidatesTruncatesTheTailOnly) {
  graph::InteractionGraph dig(5, 1);
  dig.set_causes(4, {{0, 1}, {1, 1}, {2, 1}, {3, 1}});

  AnomalyReport report;
  report.entries.push_back(
      make_entry(4, 0.8, {{0, 1}, {1, 1}, {2, 1}, {3, 1}}, {0, 0, 0, 0}));
  RootCauseConfig config;
  config.max_candidates = 2;
  const RootCauseAttribution out =
      attribute_root_cause(report, &dig, config);
  ASSERT_EQ(out.ranked.size(), 2u);
  EXPECT_EQ(out.ranked[0].device, 4u);  // the flagged head survives
  EXPECT_EQ(out.ranked[1].device, 0u);  // then the first tie-broken cause
}

}  // namespace
}  // namespace causaliot::detect
