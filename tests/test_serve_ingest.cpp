// The ingestion plane's protocol core: the flat-JSONL scanner, the
// shared IngestRouter (outcomes + rejection counters + control verbs),
// the HTTP ingest/tenant routes, and a raw-TCP end-to-end through
// net::LineProtocolServer — one line handler behind every transport.
#include "causaliot/serve/ingest.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "causaliot/core/experiment.hpp"
#include "causaliot/net/line_server.hpp"
#include "causaliot/obs/http_server.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::serve {
namespace {

// --- scanner units (no service needed) ---

TEST(ScanIngestLine, ParsesFullEventLine) {
  IngestFields fields;
  ASSERT_TRUE(scan_ingest_line(
      R"({"tenant": "home-0", "device": "pe_kitchen", "value": 1, )"
      R"("timestamp": 12.5})",
      fields));
  EXPECT_EQ(fields.tenant, "home-0");
  EXPECT_EQ(fields.device, "pe_kitchen");
  EXPECT_EQ(fields.value, 1.0);
  EXPECT_EQ(fields.timestamp, 12.5);
  EXPECT_FALSE(fields.has_op);
}

TEST(ScanIngestLine, ParsesControlLineAndUnknownKeys) {
  IngestFields fields;
  ASSERT_TRUE(scan_ingest_line(
      R"({"op": "add_tenant", "tenant": "t", "note": "hi", "n": 3, )"
      R"("flag": true})",
      fields));
  EXPECT_TRUE(fields.has_op);
  EXPECT_EQ(fields.op, "add_tenant");
  EXPECT_EQ(fields.tenant, "t");
}

TEST(ScanIngestLine, ToleratesWhitespaceAndCrlf) {
  IngestFields fields;
  EXPECT_TRUE(scan_ingest_line(
      "  { \"device\" : \"d\" , \"value\" : 0 , \"timestamp\" : 1e3 }\r",
      fields));
  EXPECT_EQ(fields.timestamp, 1000.0);
  IngestFields empty;
  EXPECT_TRUE(scan_ingest_line("{}", empty));
  EXPECT_FALSE(empty.has_device);
}

TEST(ScanIngestLine, RejectsMalformedLines) {
  IngestFields fields;
  EXPECT_FALSE(scan_ingest_line("not json", fields));
  EXPECT_FALSE(scan_ingest_line("{\"device\": }", fields));
  EXPECT_FALSE(scan_ingest_line("{\"device\": \"d\"", fields));  // no brace
  EXPECT_FALSE(scan_ingest_line("{\"value\": \"str\"}", fields));
  EXPECT_FALSE(scan_ingest_line("{\"device\": \"a\\\"b\"}", fields));
  EXPECT_FALSE(scan_ingest_line("{\"a\": 1} trailing", fields));
  EXPECT_FALSE(scan_ingest_line("{\"a\": {\"nested\": 1}}", fields));
}

// --- router + transports over a real service ---

class IngestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::HomeProfile profile = sim::contextact_profile();
    profile.days = 4.0;
    core::ExperimentConfig config;
    config.seed = 99;
    experiment_ = new core::Experiment(
        core::build_experiment(std::move(profile), config));
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  /// Service (2 shards, kReject) + router with "base" preregistered and
  /// a default tenant. Returns after start().
  struct Plane {
    std::unique_ptr<DetectionService> service;
    std::unique_ptr<IngestRouter> router;
  };
  static Plane make_plane(std::size_t queue_capacity = 4096) {
    const core::TrainedModel& model = experiment_->model;
    auto snapshot = make_snapshot(model.graph, model.score_threshold,
                                  model.laplace_alpha, /*version=*/1);
    ServiceConfig config;
    config.shard_count = 2;
    config.queue_capacity = queue_capacity;
    config.overflow = util::OverflowPolicy::kReject;
    Plane plane;
    plane.service = std::make_unique<DetectionService>(
        config, [](const ServedAlarm&) {});
    plane.service->add_tenant("base", snapshot,
                              experiment_->test_series.snapshot_state(0));
    IngestConfig ingest;
    ingest.model = snapshot;
    ingest.initial_state = experiment_->test_series.snapshot_state(0);
    ingest.default_tenant = "base";
    plane.router = std::make_unique<IngestRouter>(
        *plane.service, experiment_->catalog(), std::move(ingest));
    plane.service->start();
    return plane;
  }

  static std::string device_name(std::size_t id) {
    return experiment_->catalog().info(id).name;
  }
  static std::string event_line(const std::string& tenant, std::size_t device,
                                double timestamp, int value = 1) {
    std::string line = "{";
    if (!tenant.empty()) line += "\"tenant\": \"" + tenant + "\", ";
    return line + "\"device\": \"" + device_name(device) +
           "\", \"value\": " + std::to_string(value) +
           ", \"timestamp\": " + std::to_string(timestamp) + "}";
  }

  static core::Experiment* experiment_;
};

core::Experiment* IngestTest::experiment_ = nullptr;

using Outcome = IngestRouter::Outcome;

TEST_F(IngestTest, RoutesEventsAndCountsEveryRejection) {
  Plane plane = make_plane();
  IngestRouter& router = *plane.router;

  EXPECT_EQ(router.handle_line(event_line("base", 0, 1.0)).outcome,
            Outcome::kAccepted);
  EXPECT_EQ(router.handle_line(event_line("", 1, 2.0)).outcome,
            Outcome::kAccepted);  // default tenant
  EXPECT_EQ(router.handle_line("   ").outcome, Outcome::kBlank);
  EXPECT_EQ(router.handle_line("garbage").outcome, Outcome::kParseError);
  EXPECT_EQ(router.handle_line("{\"device\": \"x\"}").outcome,
            Outcome::kParseError);  // missing fields
  EXPECT_EQ(router.handle_line(event_line("ghost", 0, 3.0)).outcome,
            Outcome::kUnknownTenant);
  EXPECT_EQ(
      router
          .handle_line("{\"device\": \"no_such\", \"value\": 1, "
                       "\"timestamp\": 4}")
          .outcome,
      Outcome::kUnknownDevice);

  EXPECT_EQ(router.lines_total(), 6u);  // blank not counted
  EXPECT_EQ(router.accepted_total(), 2u);
  EXPECT_EQ(router.rejected_total(), 4u);

  plane.service->shutdown();
  const ServiceStats stats = plane.service->stats();
  EXPECT_EQ(stats.events_submitted, 2u);
  EXPECT_EQ(stats.events_processed, 2u);
  // The rejection reasons surface as labeled counters on the registry.
  const std::string prom = plane.service->registry().to_prometheus();
  EXPECT_NE(prom.find("serve_ingest_rejected_total{reason=\"parse\"} 2"),
            std::string::npos);
  EXPECT_NE(
      prom.find("serve_ingest_rejected_total{reason=\"unknown-tenant\"} 1"),
      std::string::npos);
  EXPECT_NE(
      prom.find("serve_ingest_rejected_total{reason=\"unknown-device\"} 1"),
      std::string::npos);
}

TEST_F(IngestTest, ControlVerbsDriveTenantChurn) {
  Plane plane = make_plane();
  IngestRouter& router = *plane.router;
  DetectionService& service = *plane.service;

  auto result =
      router.handle_line(R"({"op": "add_tenant", "tenant": "dyn"})");
  EXPECT_EQ(result.outcome, Outcome::kControlOk);
  EXPECT_EQ(*IngestRouter::response_line(result), "OK add_tenant");
  EXPECT_NE(service.find_tenant("dyn"), DetectionService::kInvalidTenant);

  // Events route to the new tenant immediately.
  EXPECT_EQ(router.handle_line(event_line("dyn", 0, 1.0)).outcome,
            Outcome::kAccepted);

  result = router.handle_line(R"({"op": "add_tenant", "tenant": "dyn"})");
  EXPECT_EQ(result.outcome, Outcome::kControlFailed);
  EXPECT_EQ(*IngestRouter::response_line(result), "ERR tenant-exists");

  result = router.handle_line(R"({"op": "remove_tenant", "tenant": "dyn"})");
  EXPECT_EQ(result.outcome, Outcome::kControlOk);
  EXPECT_EQ(service.find_tenant("dyn"), DetectionService::kInvalidTenant);
  EXPECT_EQ(router.handle_line(event_line("dyn", 0, 2.0)).outcome,
            Outcome::kUnknownTenant);

  result = router.handle_line(R"({"op": "remove_tenant", "tenant": "dyn"})");
  EXPECT_EQ(result.outcome, Outcome::kControlFailed);
  result = router.handle_line(R"({"op": "explode", "tenant": "x"})");
  EXPECT_EQ(result.outcome, Outcome::kControlFailed);
  EXPECT_EQ(*IngestRouter::response_line(result), "ERR unknown-op");
  result = router.handle_line(R"({"op": "add_tenant"})");
  EXPECT_EQ(result.outcome, Outcome::kControlFailed);
  EXPECT_EQ(*IngestRouter::response_line(result), "ERR missing-tenant");

  plane.service->shutdown();
  const ServiceStats stats = plane.service->stats();
  EXPECT_EQ(stats.tenants_added, 2u);  // base + dyn
  EXPECT_EQ(stats.tenants_removed, 1u);
}

TEST_F(IngestTest, OverflowSurfacesAsErrResponse) {
  // Unstarted service with a tiny kReject queue: pushes pile up until
  // the queue answers kRejected, which the router maps to overflow.
  const core::TrainedModel& model = experiment_->model;
  auto snapshot = make_snapshot(model.graph, model.score_threshold,
                                model.laplace_alpha, 1);
  ServiceConfig config;
  config.shard_count = 1;
  config.queue_capacity = 2;
  config.overflow = util::OverflowPolicy::kReject;
  DetectionService service(config, [](const ServedAlarm&) {});
  service.add_tenant("base", snapshot,
                     experiment_->test_series.snapshot_state(0));
  IngestConfig ingest;
  ingest.default_tenant = "base";
  IngestRouter router(service, experiment_->catalog(), std::move(ingest));

  EXPECT_EQ(router.handle_line(event_line("", 0, 1.0)).outcome,
            Outcome::kAccepted);
  EXPECT_EQ(router.handle_line(event_line("", 0, 2.0)).outcome,
            Outcome::kAccepted);
  const auto result = router.handle_line(event_line("", 0, 3.0));
  EXPECT_EQ(result.outcome, Outcome::kOverflow);
  EXPECT_EQ(*IngestRouter::response_line(result), "ERR overflow");

  service.start();
  service.shutdown();
  EXPECT_EQ(router.handle_line(event_line("", 0, 4.0)).outcome,
            Outcome::kClosed);
}

// --- HTTP transport ---

/// One-shot HTTP/1.1 request over loopback; returns the raw response.
std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& path, const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  std::string request = method + " " + path + " HTTP/1.1\r\n" +
                        "Host: localhost\r\nConnection: close\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

TEST_F(IngestTest, HttpIngestBatchAndTenantRoutes) {
  Plane plane = make_plane();
  obs::HttpServer http({.port = 0});
  attach_ingest(http, *plane.router);
  ASSERT_TRUE(http.start().ok());
  const std::uint16_t port = http.port();

  // Batch: two good lines, one bad, one blank.
  const std::string batch = event_line("base", 0, 1.0) + "\n" +
                            event_line("base", 1, 2.0) + "\n\nnot json\n";
  std::string response = http_request(port, "POST", "/ingest", batch);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"lines\": 3, \"accepted\": 2, \"controls\": 0, "
                          "\"rejected\": 1"),
            std::string::npos);
  EXPECT_NE(response.find("\"reason\": \"parse\""), std::string::npos);

  // Tenant lifecycle.
  response = http_request(port, "POST", "/tenants", "{\"tenant\": \"web\"}");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("{\"added\": \"web\"}"), std::string::npos);
  EXPECT_NE(plane.service->find_tenant("web"),
            DetectionService::kInvalidTenant);

  response = http_request(port, "POST", "/tenants", "{\"tenant\": \"web\"}");
  EXPECT_NE(response.find("409"), std::string::npos);
  response = http_request(port, "POST", "/tenants", "nonsense");
  EXPECT_NE(response.find("400"), std::string::npos);

  response = http_request(port, "DELETE", "/tenants/web", "");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(plane.service->find_tenant("web"),
            DetectionService::kInvalidTenant);
  response = http_request(port, "DELETE", "/tenants/web", "");
  EXPECT_NE(response.find("404"), std::string::npos);

  http.stop();
  plane.service->shutdown();
}

TEST_F(IngestTest, HttpIngestAnswers503OnBackpressure) {
  // kReject + unstarted service: the batch trips overflow, and the
  // transport must escalate it to a retryable 503.
  const core::TrainedModel& model = experiment_->model;
  auto snapshot = make_snapshot(model.graph, model.score_threshold,
                                model.laplace_alpha, 1);
  ServiceConfig config;
  config.shard_count = 1;
  config.queue_capacity = 1;
  config.overflow = util::OverflowPolicy::kReject;
  DetectionService service(config, [](const ServedAlarm&) {});
  service.add_tenant("base", snapshot,
                     experiment_->test_series.snapshot_state(0));
  IngestConfig ingest;
  ingest.default_tenant = "base";
  IngestRouter router(service, experiment_->catalog(), std::move(ingest));
  obs::HttpServer http({.port = 0});
  attach_ingest(http, router);
  ASSERT_TRUE(http.start().ok());

  const std::string batch =
      event_line("", 0, 1.0) + "\n" + event_line("", 0, 2.0) + "\n";
  const std::string response =
      http_request(http.port(), "POST", "/ingest", batch);
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("\"reason\": \"overflow\""), std::string::npos);

  http.stop();
  service.start();
  service.shutdown();
}

// --- raw-TCP transport ---

TEST_F(IngestTest, TcpLineProtocolEndToEnd) {
  Plane plane = make_plane();
  net::LineServerConfig line_config;
  net::LineProtocolServer tcp(
      line_config, [&](std::string_view line) {
        return IngestRouter::response_line(plane.router->handle_line(line));
      });
  const auto port = tcp.start();
  ASSERT_TRUE(port.ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port.value());
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  const std::string payload =
      event_line("base", 0, 1.0) + "\n" +                       // quiet
      "{\"op\": \"add_tenant\", \"tenant\": \"tcp\"}\n" +       // OK
      event_line("tcp", 1, 2.0) + "\n" +                        // quiet
      "{\"op\": \"remove_tenant\", \"tenant\": \"tcp\"}\n" +    // OK
      event_line("tcp", 1, 3.0) + "\n" +                        // ERR
      "broken\n";                                               // ERR
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(payload.size()));
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  EXPECT_EQ(response,
            "OK add_tenant\nOK remove_tenant\nERR unknown-tenant\n"
            "ERR parse\n");

  tcp.stop();
  plane.service->shutdown();
  const ServiceStats stats = plane.service->stats();
  EXPECT_EQ(stats.events_submitted, 2u);
  EXPECT_EQ(stats.events_processed, 2u);
  EXPECT_EQ(stats.tenants_added, 2u);
  EXPECT_EQ(stats.tenants_removed, 1u);
  // Conservation: everything the queues accepted was either an event
  // that was processed/orphaned or a control message.
  EXPECT_EQ(stats.queue_accepted,
            stats.events_processed + stats.events_orphaned + 2u /*controls*/);
}

}  // namespace
}  // namespace causaliot::serve
