// End-to-end simulator dynamics: the physical channel reacts to emitters,
// automation cascades propagate through chained rules, and the noise
// sources appear in the trace with their configured character.
#include <gtest/gtest.h>

#include <cmath>

#include "causaliot/sim/simulator.hpp"

namespace causaliot::sim {
namespace {

HomeProfile chain_profile() {
  HomeProfile profile;
  profile.name = "chain";
  profile.days = 3.0;
  profile.rooms = {"kitchen", "living"};
  profile.devices = {
      {"pe_kitchen", "kitchen", telemetry::AttributeType::kPresenceSensor,
       telemetry::ValueType::kBinary},
      {"pe_living", "living", telemetry::AttributeType::kPresenceSensor,
       telemetry::ValueType::kBinary},
      {"lamp", "kitchen", telemetry::AttributeType::kDimmer,
       telemetry::ValueType::kResponsiveNumeric},
      {"fan", "living", telemetry::AttributeType::kSwitch,
       telemetry::ValueType::kBinary},
      {"bright", "kitchen", telemetry::AttributeType::kBrightnessSensor,
       telemetry::ValueType::kAmbientNumeric},
  };
  profile.emitters = {{"lamp", "kitchen", 200.0}};
  profile.ambient_high_threshold = 100.0;
  profile.daylight_peak_lumens = 20.0;  // lamp dominates the channel
  // Chain: presence -> lamp (R1), bright High -> fan (R2).
  profile.rules = {
      {"R1", "pe_kitchen", 1, "lamp", 80.0, 2.0},
      {"R2", "bright", 1, "fan", 1.0, 2.0},
  };
  profile.activities = {
      {"visit",
       1.0,
       0.0,
       24.0,
       {{StepKind::kMoveTo, "kitchen", 0.0, 5.0, 10.0, 1.0},
        {StepKind::kSetDevice, "lamp", 0.0, 120.0, 300.0, 1.0},
        {StepKind::kSetDevice, "fan", 0.0, 10.0, 30.0, 1.0},
        {StepKind::kMoveTo, "living", 0.0, 5.0, 10.0, 1.0}}},
  };
  profile.noise.periodic_report_s = 600.0;
  profile.noise.ambient_noise_stddev = 2.0;
  profile.noise.duplicate_report_probability = 0.0;
  profile.noise.extreme_probability = 0.0;
  profile.mean_activity_gap_s = 900.0;
  return profile;
}

TEST(SimDynamics, EmitterChangeTriggersReactiveBrightnessReport) {
  SmartHomeSimulator simulator(chain_profile(), 3);
  const SimulationResult result = simulator.run();
  EXPECT_GT(result.reactive_sensor_events, 0u);
  // Within a few seconds of every lamp-on there is a brightness report.
  const auto& events = result.log.events();
  std::size_t reacted = 0;
  std::size_t lamp_ons = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].device != 2 || events[i].value <= 0.0) continue;
    ++lamp_ons;
    for (std::size_t j = i + 1;
         j < events.size() && events[j].timestamp < events[i].timestamp + 5.0;
         ++j) {
      if (events[j].device == 4) {
        ++reacted;
        break;
      }
    }
  }
  ASSERT_GT(lamp_ons, 0u);
  EXPECT_GE(reacted, lamp_ons * 9 / 10);
}

TEST(SimDynamics, PhysicalChainCascadesThroughRules) {
  // pe_kitchen=1 -> R1 lamp on -> brightness High -> R2 fan on: the full
  // trigger-physical-trigger cascade must appear in the trace order.
  SmartHomeSimulator simulator(chain_profile(), 5);
  const SimulationResult result = simulator.run();
  ASSERT_EQ(result.rule_fire_counts.size(), 2u);
  EXPECT_GT(result.rule_fire_counts[0], 0u);  // R1 fired
  EXPECT_GT(result.rule_fire_counts[1], 0u);  // R2 fired via the channel

  const auto& events = result.log.events();
  bool found_cascade = false;
  for (std::size_t i = 0; i + 3 < events.size() && !found_cascade; ++i) {
    if (events[i].device != 0 || events[i].value < 0.5) continue;  // pe on
    bool lamp = false;
    bool bright_high = false;
    bool fan = false;
    for (std::size_t j = i + 1;
         j < events.size() &&
         events[j].timestamp < events[i].timestamp + 30.0;
         ++j) {
      lamp = lamp || (events[j].device == 2 && events[j].value > 0.0);
      bright_high =
          bright_high || (lamp && events[j].device == 4 &&
                          events[j].value > 100.0);
      fan = fan || (bright_high && events[j].device == 3 &&
                    events[j].value > 0.5);
    }
    found_cascade = lamp && bright_high && fan;
  }
  EXPECT_TRUE(found_cascade);
}

TEST(SimDynamics, GroundTruthCoversTheWholeCascade) {
  SmartHomeSimulator simulator(chain_profile(), 7);
  const SimulationResult result = simulator.run();
  EXPECT_TRUE(result.ground_truth.contains(0, 2));  // R1
  EXPECT_TRUE(result.ground_truth.contains(2, 4));  // physical
  EXPECT_TRUE(result.ground_truth.contains(4, 3));  // R2
}

TEST(SimDynamics, DuplicateNoiseAppearsWhenConfigured) {
  HomeProfile profile = chain_profile();
  profile.noise.duplicate_report_probability = 0.3;
  SmartHomeSimulator simulator(profile, 11);
  const SimulationResult result = simulator.run();
  EXPECT_GT(result.duplicate_events, 0u);
}

TEST(SimDynamics, ExtremeGlitchesHaveConfiguredMagnitude) {
  HomeProfile profile = chain_profile();
  profile.noise.extreme_probability = 0.2;
  profile.noise.extreme_magnitude = 9999.0;
  profile.noise.periodic_report_s = 120.0;
  SmartHomeSimulator simulator(profile, 13);
  const SimulationResult result = simulator.run();
  EXPECT_GT(result.extreme_events, 0u);
  std::size_t seen = 0;
  for (const telemetry::DeviceEvent& event : result.log.events()) {
    seen += event.device == 4 && event.value == 9999.0;
  }
  EXPECT_EQ(seen, result.extreme_events);
}

TEST(SimDynamics, AutoOffEndsApplianceCycles) {
  HomeProfile profile = chain_profile();
  profile.auto_offs = {{"lamp", 300.0, 60.0}};
  // Remove the manual lamp-off so only auto-off can end the cycle.
  profile.activities[0].steps.erase(profile.activities[0].steps.begin() + 1);
  SmartHomeSimulator simulator(profile, 17);
  const SimulationResult result = simulator.run();
  EXPECT_GT(result.auto_off_events, 0u);
  // The lamp never stays on longer than cycle + jitter (+ scheduling slop).
  double on_since = -1.0;
  for (const telemetry::DeviceEvent& event : result.log.events()) {
    if (event.device != 2) continue;
    if (event.value > 0.0) {
      if (on_since < 0.0) on_since = event.timestamp;
    } else if (on_since >= 0.0) {
      EXPECT_LE(event.timestamp - on_since, 300.0 + 60.0 + 5.0);
      on_since = -1.0;
    }
  }
}

TEST(SimDynamics, WeatherVariesBrightnessAcrossDays) {
  // With daylight dominating (no emitters used), periodic readings at the
  // same hour differ across days because of the weather walk.
  HomeProfile profile = chain_profile();
  profile.rules.clear();
  profile.activities.clear();
  profile.daylight_peak_lumens = 150.0;
  profile.days = 5.0;
  profile.noise.periodic_report_s = 1800.0;
  profile.noise.ambient_noise_stddev = 0.5;
  SmartHomeSimulator simulator(profile, 19);
  const SimulationResult result = simulator.run();
  std::vector<double> noon_readings;
  for (const telemetry::DeviceEvent& event : result.log.events()) {
    if (event.device != 4) continue;
    const double hour = std::fmod(event.timestamp, 86400.0) / 3600.0;
    if (hour > 12.0 && hour < 14.0) noon_readings.push_back(event.value);
  }
  ASSERT_GE(noon_readings.size(), 4u);
  const auto [min_it, max_it] =
      std::minmax_element(noon_readings.begin(), noon_readings.end());
  EXPECT_GT(*max_it - *min_it, 5.0);
}

}  // namespace
}  // namespace causaliot::sim
