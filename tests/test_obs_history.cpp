// TimeSeriesStore retention semantics, driven deterministically through
// sample_at() with synthetic timestamps: what gets sampled, how the
// raw ring wraps, the exact contents of downsampled buckets, selector
// and window filtering, the history JSON payload, and — the TSan
// centerpiece — the single-writer / many-scraper ring discipline under
// a live sampler thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "causaliot/obs/registry.hpp"
#include "causaliot/obs/time_series.hpp"

namespace causaliot::obs {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

TimeSeriesConfig manual_config() {
  TimeSeriesConfig config;
  config.interval_ms = 0;  // externally driven: tests call sample_at()
  config.raw_capacity = 8;
  config.agg_capacity = 8;
  config.downsample_every = 4;
  return config;
}

TEST(ObsHistory, SamplesCountersAndGaugesButNotHistograms) {
  Registry registry;
  registry.counter("c_total").add(3);
  registry.gauge("g").set(-7);
  registry.histogram("h").record(5);

  TimeSeriesStore store(registry, manual_config());
  store.sample_at(1 * kSecond);

  EXPECT_EQ(store.samples_taken(), 1u);
  EXPECT_EQ(store.series_count(), 2u);  // histogram skipped
  const auto windows = store.raw_window("", 0, 1 * kSecond);
  ASSERT_EQ(windows.size(), 2u);
  // Deterministic (name, labels) order, mirroring the exposition.
  EXPECT_EQ(windows[0].ref.name, "c_total");
  ASSERT_EQ(windows[0].points.size(), 1u);
  EXPECT_EQ(windows[0].points[0].t_ns, 1 * kSecond);
  EXPECT_DOUBLE_EQ(windows[0].points[0].value, 3.0);
  EXPECT_EQ(windows[1].ref.name, "g");
  EXPECT_DOUBLE_EQ(windows[1].points[0].value, -7.0);
}

TEST(ObsHistory, RawRingWrapKeepsTheNewestCapacityMinusOnePoints) {
  Registry registry;
  Gauge& gauge = registry.gauge("g");
  TimeSeriesConfig config = manual_config();
  config.raw_capacity = 4;
  TimeSeriesStore store(registry, config);

  for (std::uint64_t i = 0; i < 10; ++i) {
    gauge.set(static_cast<std::int64_t>(i));
    store.sample_at(i * kSecond);
  }
  const auto windows = store.raw_window("g", 0, 10 * kSecond);
  ASSERT_EQ(windows.size(), 1u);
  // 10 pushes through a 4-slot ring: samples 7, 8, 9 survive (the slot
  // holding sample 6 is the writer's next target and is never trusted).
  ASSERT_EQ(windows[0].points.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(windows[0].points[i].t_ns, (7 + i) * kSecond);
    EXPECT_DOUBLE_EQ(windows[0].points[i].value,
                     static_cast<double>(7 + i));
  }
}

TEST(ObsHistory, DownsamplingFoldsExactMinMaxSumCountBuckets) {
  Registry registry;
  Gauge& gauge = registry.gauge("g");
  TimeSeriesStore store(registry, manual_config());  // downsample_every = 4

  const std::int64_t values[] = {5, 1, 9, 3,  // bucket 0
                                 2, 8, 4, 6,  // bucket 1
                                 7};          // partial: not folded yet
  for (std::uint64_t i = 0; i < 9; ++i) {
    gauge.set(values[i]);
    store.sample_at((i + 1) * kSecond);
  }

  const auto windows = store.agg_window("g", 0, 9 * kSecond);
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].points.size(), 2u);

  const auto& first = windows[0].points[0];
  EXPECT_EQ(first.t_first_ns, 1 * kSecond);
  EXPECT_EQ(first.t_last_ns, 4 * kSecond);
  EXPECT_DOUBLE_EQ(first.min, 1.0);
  EXPECT_DOUBLE_EQ(first.max, 9.0);
  EXPECT_DOUBLE_EQ(first.sum, 18.0);
  EXPECT_EQ(first.count, 4u);

  const auto& second = windows[0].points[1];
  EXPECT_EQ(second.t_first_ns, 5 * kSecond);
  EXPECT_EQ(second.t_last_ns, 8 * kSecond);
  EXPECT_DOUBLE_EQ(second.min, 2.0);
  EXPECT_DOUBLE_EQ(second.max, 8.0);
  EXPECT_DOUBLE_EQ(second.sum, 20.0);
  EXPECT_EQ(second.count, 4u);
}

TEST(ObsHistory, WindowFiltersByTimestamp) {
  Registry registry;
  Gauge& gauge = registry.gauge("g");
  TimeSeriesStore store(registry, manual_config());
  for (std::uint64_t i = 1; i <= 6; ++i) {
    gauge.set(static_cast<std::int64_t>(i));
    store.sample_at(i * kSecond);
  }
  // Points newer than now - 2s: t in {4s, 5s, 6s}.
  const auto windows = store.raw_window("g", 2 * kSecond, 6 * kSecond);
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].points.size(), 3u);
  EXPECT_EQ(windows[0].points.front().t_ns, 4 * kSecond);
  EXPECT_EQ(windows[0].points.back().t_ns, 6 * kSecond);
}

TEST(ObsHistory, SelectorsRestrictSamplingAndQueries) {
  Registry registry;
  registry.counter("serve_events_total").add(1);
  registry.counter("serve_alarms_total").add(2);
  registry.counter("obs_ticks_total").add(3);

  TimeSeriesConfig config = manual_config();
  config.selectors = {"serve_*"};
  TimeSeriesStore store(registry, config);
  store.sample_at(1 * kSecond);

  EXPECT_EQ(store.series_count(), 2u);  // obs_ticks_total never sampled
  EXPECT_EQ(store.raw_window("obs_ticks_total", 0, kSecond).size(), 0u);
  EXPECT_EQ(store.raw_window("serve_*", 0, kSecond).size(), 2u);
  EXPECT_EQ(store.raw_window("serve_alarms_total", 0, kSecond).size(), 1u);
  EXPECT_EQ(store.raw_window("", 0, kSecond).size(), 2u);
}

TEST(ObsHistory, LabeledInstancesBecomeDistinctSeries) {
  Registry registry;
  registry.counter("hits_total", {{"shard", "0"}}).add(1);
  registry.counter("hits_total", {{"shard", "1"}}).add(2);
  TimeSeriesStore store(registry, manual_config());
  store.sample_at(kSecond);

  const auto refs = store.series_refs();
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].name, "hits_total");
  ASSERT_EQ(refs[0].labels.size(), 1u);
  EXPECT_EQ(refs[0].labels[0].second, "0");
  EXPECT_EQ(refs[1].labels[0].second, "1");
}

TEST(ObsHistory, HistoryJsonCarriesBothTiers) {
  Registry registry;
  Gauge& gauge = registry.gauge("g", {{"shard", "0"}});
  TimeSeriesStore store(registry, manual_config());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    gauge.set(static_cast<std::int64_t>(10 * i));
    store.sample_at(i * kSecond);
  }

  const std::string raw = store.history_json("g", 0.0, "raw", 5 * kSecond);
  EXPECT_NE(raw.find("\"tier\": \"raw\""), std::string::npos);
  EXPECT_NE(raw.find("\"name\": \"g\""), std::string::npos);
  EXPECT_NE(raw.find("\"shard\": \"0\""), std::string::npos);
  EXPECT_NE(raw.find("\"value\": 50"), std::string::npos);

  const std::string agg = store.history_json("g", 0.0, "agg", 5 * kSecond);
  EXPECT_NE(agg.find("\"tier\": \"agg\""), std::string::npos);
  EXPECT_NE(agg.find("\"min\": 10"), std::string::npos);
  EXPECT_NE(agg.find("\"max\": 40"), std::string::npos);
  EXPECT_NE(agg.find("\"sum\": 100"), std::string::npos);
  EXPECT_NE(agg.find("\"count\": 4"), std::string::npos);

  const std::string none =
      store.history_json("absent_metric", 0.0, "raw", 5 * kSecond);
  EXPECT_NE(none.find("\"series\": []"), std::string::npos);
}

TEST(ObsHistory, PrePostHooksBracketTheSnapshot) {
  Registry registry;
  Gauge& gauge = registry.gauge("g");
  TimeSeriesStore store(registry, manual_config());
  std::vector<std::string> order;
  store.set_pre_sample([&](std::uint64_t now_ns) {
    EXPECT_EQ(now_ns, kSecond);
    gauge.set(42);  // refresh-derived-gauges slot: visible to this tick
    order.push_back("pre");
  });
  store.set_post_sample([&](std::uint64_t now_ns) {
    EXPECT_EQ(now_ns, kSecond);
    // The tick's samples are already published to readers here.
    const auto windows = store.raw_window("g", 0, now_ns);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_DOUBLE_EQ(windows[0].points.back().value, 42.0);
    order.push_back("post");
  });
  store.sample_at(kSecond);
  EXPECT_EQ(order, (std::vector<std::string>{"pre", "post"}));
}

// The TSan concurrency bar: one live sampler thread hammering the rings
// while scrape threads read windows and history JSON. The reader-side
// seqlock discipline must produce internally consistent windows —
// strictly increasing timestamps, never more than capacity - 1 points —
// with no data races anywhere.
TEST(ObsHistory, ConcurrentScrapesSeeConsistentWindows) {
  Registry registry;
  Gauge& gauge = registry.gauge("g");
  Registry* registry_ptr = &registry;

  TimeSeriesConfig config;
  config.interval_ms = 1;  // aggressive sampler
  config.raw_capacity = 16;
  config.agg_capacity = 16;
  config.downsample_every = 2;
  TimeSeriesStore store(registry, config);
  store.set_pre_sample([registry_ptr](std::uint64_t) {
    // Mutate the registry from the sampler side too.
    registry_ptr->gauge("g").add(1);
  });
  store.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&store, &stop, &config] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto windows = store.raw_window("g", 0, ~std::uint64_t{0} / 2);
        for (const auto& window : windows) {
          EXPECT_LE(window.points.size(), config.raw_capacity - 1);
          for (std::size_t i = 1; i < window.points.size(); ++i) {
            // A torn or mis-dropped slot would read as out-of-order.
            EXPECT_LE(window.points[i - 1].t_ns, window.points[i].t_ns);
          }
        }
        const std::string json =
            store.history_json("", 0.0, "agg", ~std::uint64_t{0} / 2);
        EXPECT_FALSE(json.empty());
      }
    });
  }
  // Writer churn from a second producer thread against the same gauge.
  std::thread producer([&gauge, &stop] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) gauge.set(++i);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : scrapers) t.join();
  producer.join();
  store.stop();
  EXPECT_GT(store.samples_taken(), 1u);
}

TEST(ObsHistory, StartStopLifecycleIsIdempotent) {
  Registry registry;
  registry.gauge("g").set(1);
  TimeSeriesConfig config;
  config.interval_ms = 1;
  TimeSeriesStore store(registry, config);
  EXPECT_FALSE(store.running());
  store.start();
  EXPECT_TRUE(store.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  store.stop();
  EXPECT_FALSE(store.running());
  store.stop();  // idempotent
  EXPECT_GE(store.samples_taken(), 1u);
}

}  // namespace
}  // namespace causaliot::obs
