#include "causaliot/preprocess/series.hpp"

#include <gtest/gtest.h>

#include "causaliot/util/rng.hpp"

namespace causaliot::preprocess {
namespace {

StateSeries demo_series() {
  // 3 devices, S^0 = (0, 1, 0); events flip devices one at a time.
  StateSeries series(3, {0, 1, 0});
  series.apply({0, 1, 1.0});  // S^1 = (1, 1, 0)
  series.apply({1, 0, 2.0});  // S^2 = (1, 0, 0)
  series.apply({2, 1, 3.0});  // S^3 = (1, 0, 1)
  series.apply({0, 0, 4.0});  // S^4 = (0, 0, 1)
  return series;
}

TEST(StateSeries, FoldSemantics) {
  const StateSeries series = demo_series();
  EXPECT_EQ(series.length(), 5u);
  EXPECT_EQ(series.event_count(), 4u);
  EXPECT_EQ(series.snapshot_state(0), (std::vector<std::uint8_t>{0, 1, 0}));
  EXPECT_EQ(series.snapshot_state(2), (std::vector<std::uint8_t>{1, 0, 0}));
  EXPECT_EQ(series.snapshot_state(4), (std::vector<std::uint8_t>{0, 0, 1}));
}

TEST(StateSeries, OnlyReportedDeviceChangesPerStep) {
  const StateSeries series = demo_series();
  for (std::size_t j = 1; j < series.length(); ++j) {
    std::size_t changed = 0;
    for (telemetry::DeviceId d = 0; d < series.device_count(); ++d) {
      changed += series.state(d, j) != series.state(d, j - 1);
    }
    EXPECT_LE(changed, 1u);
    if (changed == 1) {
      EXPECT_EQ(series.state(series.event_at(j).device, j),
                series.event_at(j).state);
    }
  }
}

TEST(StateSeries, EventAtReturnsOriginalEvents) {
  const StateSeries series = demo_series();
  EXPECT_EQ(series.event_at(1).device, 0u);
  EXPECT_EQ(series.event_at(1).state, 1u);
  EXPECT_DOUBLE_EQ(series.event_at(3).timestamp, 3.0);
}

TEST(StateSeries, DeviceStatesSpan) {
  const StateSeries series = demo_series();
  const auto device0 = series.device_states(0);
  EXPECT_EQ(std::vector<std::uint8_t>(device0.begin(), device0.end()),
            (std::vector<std::uint8_t>{0, 1, 1, 1, 0}));
}

TEST(StateSeries, LaggedColumnAlignment) {
  const StateSeries series = demo_series();
  // Snapshots j = 2..4; lag 0 of device 0 -> states at times 2, 3, 4.
  const auto lag0 = series.lagged_column(0, 0, 2);
  EXPECT_EQ(std::vector<std::uint8_t>(lag0.begin(), lag0.end()),
            (std::vector<std::uint8_t>{1, 1, 0}));
  // lag 2 of device 0 -> states at times 0, 1, 2.
  const auto lag2 = series.lagged_column(0, 2, 2);
  EXPECT_EQ(std::vector<std::uint8_t>(lag2.begin(), lag2.end()),
            (std::vector<std::uint8_t>{0, 1, 1}));
}

TEST(StateSeries, LaggedColumnsShareAlignmentProperty) {
  // Property: column(device, lag, first)[i] == state(device, first+i-lag).
  util::Rng rng(3);
  StateSeries series(4, {0, 0, 0, 0});
  for (int i = 0; i < 100; ++i) {
    const auto device = static_cast<telemetry::DeviceId>(rng.uniform(4));
    series.apply({device, static_cast<std::uint8_t>(rng.uniform(2)),
                  static_cast<double>(i)});
  }
  for (std::size_t lag = 0; lag <= 3; ++lag) {
    const auto column = series.lagged_column(2, lag, 3);
    for (std::size_t i = 0; i < column.size(); ++i) {
      EXPECT_EQ(column[i], series.state(2, 3 + i - lag));
    }
  }
}

TEST(StateSeries, SplitPreservesStates) {
  const StateSeries series = demo_series();
  const auto [head, tail] = series.split(2);
  EXPECT_EQ(head.event_count(), 2u);
  EXPECT_EQ(tail.event_count(), 2u);
  // The tail's initial state is S^2 of the original.
  EXPECT_EQ(tail.snapshot_state(0), series.snapshot_state(2));
  // Replaying both parts reproduces the final state.
  EXPECT_EQ(tail.snapshot_state(tail.length() - 1),
            series.snapshot_state(series.length() - 1));
  EXPECT_EQ(head.snapshot_state(head.length() - 1),
            series.snapshot_state(2));
}

TEST(StateSeries, SplitAtEnd) {
  const StateSeries series = demo_series();
  const auto [head, tail] = series.split(4);
  EXPECT_EQ(head.event_count(), 4u);
  EXPECT_EQ(tail.event_count(), 0u);
  EXPECT_EQ(tail.length(), 1u);
}

TEST(BuildSeries, StartsAllZero) {
  const std::vector<BinaryEvent> events{{1, 1, 0.5}, {0, 1, 1.5}};
  const StateSeries series = build_series(3, events);
  EXPECT_EQ(series.snapshot_state(0), (std::vector<std::uint8_t>{0, 0, 0}));
  EXPECT_EQ(series.snapshot_state(2), (std::vector<std::uint8_t>{1, 1, 0}));
}

TEST(StateSeries, DefaultConstructedIsEmpty) {
  StateSeries series;
  EXPECT_EQ(series.length(), 0u);
  EXPECT_EQ(series.device_count(), 0u);
}

}  // namespace
}  // namespace causaliot::preprocess
