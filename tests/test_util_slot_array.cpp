// SlotArray: the lock-free index-to-pointer directory under the serving
// plane's tenant tables. The contract that matters: get() on an
// unfilled slot is nullptr (never garbage), emplace() publishes a fully
// constructed object, and pointers stay stable forever — concurrent
// readers racing emplaces must only ever observe absent or whole.
#include "causaliot/util/slot_array.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace causaliot::util {
namespace {

TEST(SlotArray, AbsentSlotsReadAsNull) {
  SlotArray<int> slots;
  EXPECT_EQ(slots.get(0), nullptr);
  EXPECT_EQ(slots.get(123456), nullptr);
}

TEST(SlotArray, EmplaceThenGetRoundTrips) {
  SlotArray<std::string> slots;
  slots.emplace(0, "zero");
  slots.emplace(7, "seven");
  ASSERT_NE(slots.get(0), nullptr);
  EXPECT_EQ(*slots.get(0), "zero");
  ASSERT_NE(slots.get(7), nullptr);
  EXPECT_EQ(*slots.get(7), "seven");
  EXPECT_EQ(slots.get(1), nullptr);  // gaps stay empty
}

TEST(SlotArray, PointersSurviveLaterGrowth) {
  SlotArray<int, /*kChunkBits=*/2> slots;  // 4 slots per chunk
  int* first = &slots.emplace(0, 42);
  // Filling far-away chunks must not move the earlier slot.
  for (std::size_t i = 1; i < 40; ++i) slots.emplace(i, static_cast<int>(i));
  EXPECT_EQ(slots.get(0), first);
  EXPECT_EQ(*first, 42);
  EXPECT_EQ(*slots.get(39), 39);
}

TEST(SlotArray, CrossesChunkBoundaries) {
  SlotArray<std::size_t, /*kChunkBits=*/3> slots;  // 8 slots per chunk
  for (std::size_t i = 0; i < 64; ++i) slots.emplace(i, i);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_NE(slots.get(i), nullptr) << i;
    EXPECT_EQ(*slots.get(i), i);
  }
}

TEST(SlotArray, ConcurrentReadersSeeAbsentOrWhole) {
  // A writer fills slots in order while readers hammer the whole range:
  // every non-null observation must already carry the final value. Under
  // TSan this also proves the publish is properly release/acquire.
  struct Payload {
    explicit Payload(std::size_t value) : a(value), b(value * 2) {}
    std::size_t a;
    std::size_t b;
  };
  constexpr std::size_t kSlots = 2000;
  SlotArray<Payload, /*kChunkBits=*/4> slots;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::size_t i = 0; i < kSlots; ++i) {
          const Payload* payload = slots.get(i);
          if (payload != nullptr) {
            EXPECT_EQ(payload->a, i);
            EXPECT_EQ(payload->b, i * 2);
          }
        }
      }
    });
  }
  for (std::size_t i = 0; i < kSlots; ++i) slots.emplace(i, i);
  stop.store(true);
  for (auto& reader : readers) reader.join();
}

}  // namespace
}  // namespace causaliot::util
