#include "causaliot/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace causaliot::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a() != b();
  EXPECT_GT(differing, 12);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(7);
  (void)parent_copy();  // consume the value used for splitting
  int equal = 0;
  for (int i = 0; i < 32; ++i) equal += child() == parent_copy();
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.uniform_int(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo = saw_lo || value == -3;
    saw_hi = saw_hi || value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(2.0), 0.0);
}

TEST(Rng, WeightedIndexHonorsZeros) {
  Rng rng(37);
  const std::vector<double> weights{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 500; ++i) {
    const std::size_t index = rng.weighted_index(weights);
    EXPECT_TRUE(index == 1 || index == 3);
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ones += rng.weighted_index(weights) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(47);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
  Rng rng(53);
  const auto sample = rng.sample_indices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), 20u);
  for (std::size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(59);
  const auto sample = rng.sample_indices(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SplitMix, IsDeterministicAndMixing) {
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 1;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  std::uint64_t s3 = 2;
  std::uint64_t s4 = 1;
  EXPECT_NE(splitmix64(s3), splitmix64(s4));
}

// Property sweep: uniform(bound) stays in range across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, Uniform01BoundsHold) {
  Rng rng(GetParam());
  double min = 1.0;
  double max = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform01();
    min = std::min(min, u);
    max = std::max(max, u);
  }
  EXPECT_GE(min, 0.0);
  EXPECT_LT(max, 1.0);
  // With 5000 draws the extremes should approach the interval ends.
  EXPECT_LT(min, 0.01);
  EXPECT_GT(max, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 31337ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace causaliot::util
