// Parallel mining must be bit-identical to the serial run: same skeleton,
// same CPT counts, same diagnostics in the same order — for every
// combination of skeleton variant (plain / PC-stable) and CI test
// (G-square / CMH). This is the contract that lets deployments scale
// mining across cores without revalidating detection behaviour.
#include <gtest/gtest.h>

#include <tuple>

#include "causaliot/detect/monitor.hpp"
#include "causaliot/mining/temporal_pc.hpp"
#include "causaliot/stats/cmh.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::mining {
namespace {

using preprocess::StateSeries;

// A busy synthetic home: chain interactions plus noise, enough devices
// that the per-child workloads are skewed and the pool actually reorders
// execution relative to the serial child loop.
StateSeries busy_series(std::size_t device_count, std::size_t event_count,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> state(device_count, 0);
  StateSeries series(device_count, state);
  telemetry::DeviceId last = 0;
  for (std::size_t j = 0; j < event_count; ++j) {
    telemetry::DeviceId device;
    if (rng.bernoulli(0.6)) {
      device = (last + 1) % static_cast<telemetry::DeviceId>(device_count);
    } else {
      device = static_cast<telemetry::DeviceId>(rng.uniform(device_count));
    }
    state[device] ^= 1;
    series.apply({device, state[device], static_cast<double>(j)});
    last = device;
  }
  return series;
}

void expect_identical_removal(const RemovalRecord& a, const RemovalRecord& b,
                              std::size_t position) {
  EXPECT_EQ(a.cause, b.cause) << "removal " << position;
  EXPECT_EQ(a.child, b.child) << "removal " << position;
  EXPECT_EQ(a.condition_size, b.condition_size) << "removal " << position;
  EXPECT_EQ(a.p_value, b.p_value) << "removal " << position;  // bit-exact
  EXPECT_EQ(a.separating_set, b.separating_set) << "removal " << position;
}

// CPTs: every observed assignment with bit-identical counts.
void expect_identical_cpts(const graph::InteractionGraph& serial,
                           const graph::InteractionGraph& parallel) {
  ASSERT_EQ(serial.device_count(), parallel.device_count());
  for (telemetry::DeviceId child = 0; child < serial.device_count();
       ++child) {
    const graph::Cpt& s = serial.cpt(child);
    const graph::Cpt& p = parallel.cpt(child);
    EXPECT_EQ(s.causes(), p.causes()) << "child " << child;
    ASSERT_EQ(s.assignment_count(), p.assignment_count()) << "child " << child;
    for (const auto& [key, counts] : s.counts()) {
      const auto it = p.counts().find(key);
      ASSERT_NE(it, p.counts().end()) << "child " << child << " key " << key;
      EXPECT_EQ(counts, it->second) << "child " << child << " key " << key;
    }
  }
}

void expect_identical_models(const graph::InteractionGraph& serial,
                             const graph::InteractionGraph& parallel,
                             const MiningDiagnostics& serial_diag,
                             const MiningDiagnostics& parallel_diag) {
  // Skeleton: edge-for-edge, including order within each child.
  EXPECT_EQ(serial.edges(), parallel.edges());

  expect_identical_cpts(serial, parallel);

  // Diagnostics: same totals and the same removal sequence (parallel
  // mining merges per-child records in child order — the serial order).
  EXPECT_EQ(serial_diag.tests_run, parallel_diag.tests_run);
  EXPECT_EQ(serial_diag.candidate_edges, parallel_diag.candidate_edges);
  ASSERT_EQ(serial_diag.removals.size(), parallel_diag.removals.size());
  for (std::size_t i = 0; i < serial_diag.removals.size(); ++i) {
    expect_identical_removal(serial_diag.removals[i],
                             parallel_diag.removals[i], i);
  }
}

class ParallelMiningEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, CiTest>> {};

TEST_P(ParallelMiningEquivalence, EightThreadsMatchesSerial) {
  const auto [stable, ci_test] = GetParam();
  const StateSeries series = busy_series(12, 3000, 2024);

  MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  config.stable = stable;
  config.ci_test = ci_test;

  config.threads = 1;
  MiningDiagnostics serial_diag;
  const graph::InteractionGraph serial =
      InteractionMiner(config).mine(series, &serial_diag);

  config.threads = 8;
  MiningDiagnostics parallel_diag;
  const graph::InteractionGraph parallel =
      InteractionMiner(config).mine(series, &parallel_diag);

  expect_identical_models(serial, parallel, serial_diag, parallel_diag);
}

TEST_P(ParallelMiningEquivalence, ExternalPoolMatchesSerial) {
  const auto [stable, ci_test] = GetParam();
  const StateSeries series = busy_series(8, 2000, 7);

  MinerConfig config;
  config.max_lag = 2;
  config.stable = stable;
  config.ci_test = ci_test;

  MiningDiagnostics serial_diag;
  const graph::InteractionGraph serial =
      InteractionMiner(config).mine(series, &serial_diag);

  util::ThreadPool pool(4);
  MiningDiagnostics pooled_diag;
  const graph::InteractionGraph pooled =
      InteractionMiner(config).mine(series, &pooled_diag, &pool);

  expect_identical_models(serial, pooled, serial_diag, pooled_diag);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ParallelMiningEquivalence,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(CiTest::kGSquare, CiTest::kCmh)),
    [](const ::testing::TestParamInfo<std::tuple<bool, CiTest>>& info) {
      return std::string(std::get<0>(info.param) ? "Stable" : "Plain") +
             (std::get<1>(info.param) == CiTest::kCmh ? "Cmh" : "GSquare");
    });

// The CPT-estimation stage on its own: a pooled estimate over an already
// mined skeleton must produce bit-identical counts to the serial pass
// (each worker owns exactly one child's Cpt), and the same must hold for
// the drift-adaptation path update_cpts, whose decayed counts are
// floating-point and therefore sensitive to any accumulation reorder.
TEST(ParallelCptEstimation, PooledEstimateAndUpdateMatchSerial) {
  const StateSeries train = busy_series(10, 2500, 11);
  const StateSeries fresh = busy_series(10, 1200, 12);

  MinerConfig config;
  config.max_lag = 2;
  const InteractionMiner miner(config);
  const graph::InteractionGraph mined = miner.mine(train);

  // estimate_cpts: rebuild counts from scratch, serial vs pooled.
  graph::InteractionGraph serial = mined;
  graph::InteractionGraph pooled = mined;
  util::ThreadPool pool(4);
  miner.estimate_cpts(train, serial);
  miner.estimate_cpts(train, pooled, &pool);
  expect_identical_cpts(serial, pooled);

  // update_cpts: decay + fold-in of a fresh series, serial vs pooled.
  miner.update_cpts(fresh, serial, 0.9);
  miner.update_cpts(fresh, pooled, 0.9, &pool);
  expect_identical_cpts(serial, pooled);
}

// Threshold calibration: pooled training_scores must be bit-identical to
// the serial pass (each event's score is written to its own slot from the
// immutable series and graph), so the calibrated percentile threshold —
// and hence every downstream alarm decision — is independent of
// PipelineConfig::mining_threads.
TEST(ParallelThresholdCalibration, PooledTrainingScoresMatchSerial) {
  const StateSeries train = busy_series(10, 3000, 13);
  MinerConfig config;
  config.max_lag = 2;
  const graph::InteractionGraph graph = InteractionMiner(config).mine(train);

  const std::vector<double> serial =
      detect::ThresholdCalculator::training_scores(graph, train, 0.1);
  util::ThreadPool pool(4);
  const std::vector<double> pooled =
      detect::ThresholdCalculator::training_scores(graph, train, 0.1, &pool);
  ASSERT_EQ(serial.size(), pooled.size());
  ASSERT_FALSE(serial.empty());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "score " << i;
  }
  EXPECT_EQ(detect::ThresholdCalculator::threshold_at_percentile(serial, 99.0),
            detect::ThresholdCalculator::threshold_at_percentile(pooled, 99.0));
}

// The packed counting kernel and the per-row kernel must agree exactly
// for every conditioning-set size up to the packed limit — including a
// sample count that leaves a partial tail word.
TEST(PackedKernel, MatchesByteKernelAcrossConditioningSizes) {
  util::Rng rng(99);
  const std::size_t n = 4097;  // odd tail word exercises the valid mask
  std::vector<std::uint8_t> x(n), y(n);
  std::vector<std::vector<std::uint8_t>> z(stats::kPackedConditioningLimit,
                                           std::vector<std::uint8_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    y[i] = static_cast<std::uint8_t>((x[i] + rng.uniform(2)) % 2);
    for (auto& column : z) {
      column[i] = static_cast<std::uint8_t>(rng.uniform(2));
    }
  }
  const stats::PackedColumn px{std::span<const std::uint8_t>(x)};
  const stats::PackedColumn py{std::span<const std::uint8_t>(y)};
  std::vector<stats::PackedColumn> pz;
  for (const auto& column : z) {
    pz.emplace_back(std::span<const std::uint8_t>(column));
  }

  stats::CiTestContext context;
  for (std::size_t l = 0; l <= stats::kPackedConditioningLimit; ++l) {
    std::vector<std::span<const std::uint8_t>> z_spans;
    std::vector<const stats::PackedColumn*> z_packed;
    for (std::size_t j = 0; j < l; ++j) {
      z_spans.emplace_back(z[j]);
      z_packed.push_back(&pz[j]);
    }
    const stats::GSquareResult byte_g =
        stats::g_square_test(x, y, z_spans, {}, context);
    const stats::GSquareResult packed_g =
        stats::g_square_test(px, py, z_packed, {}, context);
    EXPECT_EQ(byte_g.statistic, packed_g.statistic) << "l=" << l;
    EXPECT_EQ(byte_g.dof, packed_g.dof) << "l=" << l;
    EXPECT_EQ(byte_g.p_value, packed_g.p_value) << "l=" << l;

    const stats::CmhResult byte_cmh = stats::cmh_test(x, y, z_spans, context);
    const stats::CmhResult packed_cmh =
        stats::cmh_test(px, py, z_packed, context);
    EXPECT_EQ(byte_cmh.statistic, packed_cmh.statistic) << "l=" << l;
    EXPECT_EQ(byte_cmh.p_value, packed_cmh.p_value) << "l=" << l;
    EXPECT_EQ(byte_cmh.informative_strata, packed_cmh.informative_strata)
        << "l=" << l;
  }
}

// Batched multi-subset CI counting (MinerConfig::ci_batching) is a pure
// performance switch: turning it off must reproduce the DIG, the CPT
// counts, the diagnostics sequence, and the per-level test totals bit for
// bit — the same contract the parallel/serial pair satisfies.
class CiBatchingEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, CiTest>> {};

TEST_P(CiBatchingEquivalence, BatchedMiningMatchesPerSubset) {
  const auto [stable, ci_test] = GetParam();
  const StateSeries series = busy_series(12, 3000, 2024);

  MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  config.stable = stable;
  config.ci_test = ci_test;

  obs::Registry batched_registry;
  config.ci_batching = true;
  config.metrics_registry = &batched_registry;
  MiningDiagnostics batched_diag;
  const graph::InteractionGraph batched =
      InteractionMiner(config).mine(series, &batched_diag);

  obs::Registry direct_registry;
  config.ci_batching = false;
  config.metrics_registry = &direct_registry;
  MiningDiagnostics direct_diag;
  const graph::InteractionGraph direct =
      InteractionMiner(config).mine(series, &direct_diag);

  expect_identical_models(batched, direct, batched_diag, direct_diag);

  // Early-exit semantics carry over: the batched run consumed exactly the
  // same number of tests at every conditioning level.
  for (std::size_t l = 0; l <= config.max_lag * series.device_count(); ++l) {
    EXPECT_EQ(batched_registry
                  .counter("mining_ci_tests_total",
                           {{"level", std::to_string(l)}})
                  .value(),
              direct_registry
                  .counter("mining_ci_tests_total",
                           {{"level", std::to_string(l)}})
                  .value())
        << "level " << l;
  }
}

TEST_P(CiBatchingEquivalence, GuardSkippedTestsMatchPerSubset) {
  // A tight small-sample guard makes deeper tests skip; the skip must
  // happen before counting in both paths and count toward the same
  // tests_run total.
  const auto [stable, ci_test] = GetParam();
  const StateSeries series = busy_series(10, 600, 5);

  MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  config.stable = stable;
  config.ci_test = ci_test;
  config.min_samples_per_dof = 100.0;

  config.ci_batching = true;
  MiningDiagnostics batched_diag;
  const graph::InteractionGraph batched =
      InteractionMiner(config).mine(series, &batched_diag);

  config.ci_batching = false;
  MiningDiagnostics direct_diag;
  const graph::InteractionGraph direct =
      InteractionMiner(config).mine(series, &direct_diag);

  expect_identical_models(batched, direct, batched_diag, direct_diag);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CiBatchingEquivalence,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(CiTest::kGSquare, CiTest::kCmh)),
    [](const ::testing::TestParamInfo<std::tuple<bool, CiTest>>& info) {
      return std::string(std::get<0>(info.param) ? "Stable" : "Plain") +
             (std::get<1>(info.param) == CiTest::kCmh ? "Cmh" : "GSquare");
    });

// Satellite (PR 6): the SIMD kernel backend is a pure throughput switch.
// A full mine under every backend the host can execute must reproduce
// the scalar run's DIG, CPT counts, diagnostics sequence, per-level test
// totals, and per-kernel dispatch counts bit for bit — the contract that
// makes the capability probe's choice (and CAUSALIOT_SIMD overrides)
// invisible to detection behaviour.
class SimdBackendEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, CiTest>> {};

TEST_P(SimdBackendEquivalence, EveryBackendMatchesScalarMining) {
  const auto [stable, ci_test] = GetParam();
  const StateSeries series = busy_series(12, 3000, 2024);

  MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  config.stable = stable;
  config.ci_test = ci_test;

  const stats::simd::Backend before = stats::simd::chosen();
  ASSERT_TRUE(stats::simd::force_backend(stats::simd::Backend::kScalar));
  obs::Registry scalar_registry;
  config.metrics_registry = &scalar_registry;
  MiningDiagnostics scalar_diag;
  const graph::InteractionGraph scalar =
      InteractionMiner(config).mine(series, &scalar_diag);

  const auto kernel_hits = [](obs::Registry& registry,
                              stats::simd::Backend backend,
                              const char* kernel) {
    return registry
        .counter("mining_ci_kernel_hits_total",
                 {{"kernel", kernel},
                  {"backend",
                   std::string(stats::simd::backend_name(backend))}})
        .value();
  };

  for (const stats::simd::Backend backend :
       stats::simd::available_backends()) {
    SCOPED_TRACE(std::string("backend ") +
                 std::string(stats::simd::backend_name(backend)));
    ASSERT_TRUE(stats::simd::force_backend(backend));
    obs::Registry registry;
    config.metrics_registry = &registry;
    MiningDiagnostics diag;
    const graph::InteractionGraph mined =
        InteractionMiner(config).mine(series, &diag);

    expect_identical_models(scalar, mined, scalar_diag, diag);
    for (std::size_t l = 0; l <= config.max_lag * series.device_count();
         ++l) {
      EXPECT_EQ(registry
                    .counter("mining_ci_tests_total",
                             {{"level", std::to_string(l)}})
                    .value(),
                scalar_registry
                    .counter("mining_ci_tests_total",
                             {{"level", std::to_string(l)}})
                    .value())
          << "level " << l;
    }
    // Same dispatch counts per kernel, each labelled with its own run's
    // backend.
    for (const char* kernel : {"batched", "packed", "byte"}) {
      EXPECT_EQ(kernel_hits(registry, backend, kernel),
                kernel_hits(scalar_registry, stats::simd::Backend::kScalar,
                            kernel))
          << "kernel " << kernel;
    }
  }
  ASSERT_TRUE(stats::simd::force_backend(before));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SimdBackendEquivalence,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(CiTest::kGSquare, CiTest::kCmh)),
    [](const ::testing::TestParamInfo<std::tuple<bool, CiTest>>& info) {
      return std::string(std::get<0>(info.param) ? "Stable" : "Plain") +
             (std::get<1>(info.param) == CiTest::kCmh ? "Cmh" : "GSquare");
    });

}  // namespace
}  // namespace causaliot::mining
