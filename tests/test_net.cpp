// net::SocketServer / net::LineProtocolServer: the socket skeleton under
// both the HTTP plane and the JSONL ingestion plane. Framing (split and
// coalesced writes, CRLF, oversized lines, the EOF tail), the
// quiet-on-success response model, accept-queue overflow, and graceful
// stop with connections parked in recv.
#include "causaliot/net/line_server.hpp"
#include "causaliot/net/socket_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace causaliot::net {
namespace {

/// Minimal blocking loopback client with a receive timeout.
class Client {
 public:
  /// `rcvbuf_bytes` > 0 shrinks SO_RCVBUF before connecting, so the
  /// kernel advertises a tiny window and a large server response is
  /// forced through many short sends.
  explicit Client(std::uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)),
              0);
    timeval timeout{/*tv_sec=*/5, /*tv_usec=*/0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  ~Client() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  void send(std::string_view data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  /// Reads until `lines` newline-terminated lines arrived (or timeout).
  std::string recv_lines(std::size_t lines) {
    std::string out;
    char buffer[4096];
    while (static_cast<std::size_t>(
               std::count(out.begin(), out.end(), '\n')) < lines) {
      const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (got <= 0) break;
      out.append(buffer, static_cast<std::size_t>(got));
    }
    return out;
  }

  /// Reads until the peer closes (or timeout).
  std::string recv_all() {
    std::string out;
    char buffer[4096];
    while (true) {
      const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (got <= 0) break;
      out.append(buffer, static_cast<std::size_t>(got));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

TEST(SocketServer, DispatchesConnectionsToWorkers) {
  SocketServerConfig config;
  config.worker_count = 2;
  std::atomic<int> served{0};
  SocketServer server(
      config,
      [&](int fd) {
        const char byte = 'x';
        (void)::send(fd, &byte, 1, MSG_NOSIGNAL);
        ++served;
        ::close(fd);
      },
      [](int fd) { ::close(fd); });
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  ASSERT_GT(port.value(), 0);

  for (int i = 0; i < 5; ++i) {
    Client client(port.value());
    EXPECT_EQ(client.recv_all(), "x");
  }
  server.stop();
  EXPECT_EQ(served.load(), 5);
  EXPECT_EQ(server.connections_accepted(), 5u);
  EXPECT_EQ(server.connections_overflowed(), 0u);
  EXPECT_FALSE(server.running());
}

TEST(SocketServer, StopIsIdempotentAndStartAnswersPort) {
  SocketServer server(
      {}, [](int fd) { ::close(fd); }, [](int fd) { ::close(fd); });
  const auto port = server.start();
  ASSERT_TRUE(port.ok());
  EXPECT_EQ(server.port(), port.value());
  server.stop();
  server.stop();  // second stop is a no-op, not a crash
  EXPECT_FALSE(server.running());
}

TEST(SocketServer, OverflowHandlerSeesQueueSpill) {
  // One worker wedged on a slow connection + a 1-slot accept queue:
  // further connections must route to the overflow handler, not pile up.
  SocketServerConfig config;
  config.worker_count = 1;
  config.max_pending_connections = 1;
  std::atomic<bool> release{false};
  std::atomic<int> overflowed{0};
  SocketServer server(
      config,
      [&](int fd) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ::close(fd);
      },
      [&](int fd) {
        ++overflowed;
        ::close(fd);
      });
    const auto port = server.start();
  ASSERT_TRUE(port.ok());

  Client wedge(port.value());   // occupies the worker
  Client queued(port.value());  // fills the 1-slot queue
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::unique_ptr<Client>> spill;
  for (int i = 0; i < 3; ++i) {
    spill.push_back(std::make_unique<Client>(port.value()));
  }
  // The spilled connections see EOF once the overflow handler closes.
  for (auto& client : spill) EXPECT_EQ(client->recv_all(), "");
  EXPECT_GE(overflowed.load(), 3);
  release.store(true);
  server.stop();
  EXPECT_EQ(server.connections_overflowed(),
            static_cast<std::uint64_t>(overflowed.load()));
}

std::unique_ptr<LineProtocolServer> echo_server(
    std::atomic<std::size_t>* handled = nullptr) {
  LineServerConfig config;
  return std::make_unique<LineProtocolServer>(
      config, [handled](std::string_view line) -> std::optional<std::string> {
        if (handled != nullptr) ++*handled;
        if (line.empty()) return std::nullopt;
        if (line == "quiet") return std::nullopt;  // success path: silence
        return "echo " + std::string(line);
      });
}

TEST(LineProtocolServer, EchoesLinesOnPersistentConnection) {
  auto server = echo_server();
  const auto port = server->start();
  ASSERT_TRUE(port.ok());

  Client client(port.value());
  client.send("alpha\nbeta\n");
  EXPECT_EQ(client.recv_lines(2), "echo alpha\necho beta\n");
  // Same connection, later lines: the stream stays open.
  client.send("gamma\n");
  EXPECT_EQ(client.recv_lines(1), "echo gamma\n");
  client.close();
  server->stop();
  const auto stats = server->stats();
  EXPECT_EQ(stats.lines_total, 3u);
  EXPECT_EQ(stats.responses_total, 3u);
  EXPECT_EQ(stats.connections_accepted, 1u);
}

TEST(LineProtocolServer, ReassemblesSplitLinesAndStripsCrlf) {
  auto server = echo_server();
  const auto port = server->start();
  ASSERT_TRUE(port.ok());

  Client client(port.value());
  client.send("hel");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.send("lo\r\nwor");
  EXPECT_EQ(client.recv_lines(1), "echo hello\n");
  client.send("ld\r\n");
  EXPECT_EQ(client.recv_lines(1), "echo world\n");
  client.close();
  server->stop();
}

TEST(LineProtocolServer, QuietSuccessWritesNothing) {
  std::atomic<std::size_t> handled{0};
  auto server = echo_server(&handled);
  const auto port = server->start();
  ASSERT_TRUE(port.ok());

  Client client(port.value());
  client.send("quiet\nquiet\nloud\n");
  // Only the third line answers; the two quiet ones must not block it.
  EXPECT_EQ(client.recv_lines(1), "echo loud\n");
  EXPECT_EQ(handled.load(), 3u);
  client.close();
  server->stop();
  EXPECT_EQ(server->stats().responses_total, 1u);
}

TEST(LineProtocolServer, EofTailCountsAsFinalLine) {
  std::atomic<std::size_t> handled{0};
  auto server = echo_server(&handled);
  const auto port = server->start();
  ASSERT_TRUE(port.ok());

  Client client(port.value());
  client.send("unterminated");
  client.shutdown_write();
  EXPECT_EQ(client.recv_lines(1), "echo unterminated\n");
  EXPECT_EQ(handled.load(), 1u);
  client.close();
  server->stop();
}

TEST(LineProtocolServer, OversizedLinePoisonsConnection) {
  LineServerConfig config;
  config.max_line_bytes = 16;
  LineProtocolServer server(
      config, [](std::string_view) -> std::optional<std::string> {
        return "ok";
      });
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  Client client(port.value());
  client.send(std::string(64, 'x') + "\n");
  // The server answers the oversized marker, then drops the connection.
  EXPECT_EQ(client.recv_all(), "ERR oversized-line\n");
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().oversized_drops, 1u);
}

TEST(LineProtocolServer, StopWakesConnectionsParkedInRecv) {
  auto server = echo_server();
  const auto port = server->start();
  ASSERT_TRUE(port.ok());

  Client idle(port.value());  // never sends; worker parked in recv
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto begin = std::chrono::steady_clock::now();
  server->stop();  // must not wait out the io timeout
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, std::chrono::seconds(4));
  EXPECT_EQ(idle.recv_all(), "");  // clean EOF, not a reset mid-line
  EXPECT_FALSE(server->running());
}

TEST(LineProtocolServer, LargeResponseSurvivesShortSends) {
  // A response far larger than any socket buffer, pushed at a client
  // whose receive window is pinned small: write_all must loop through
  // many partial sends and still deliver every byte in order.
  const std::size_t kPayloadBytes = 6 * 1024 * 1024;
  std::string payload;
  payload.reserve(kPayloadBytes);
  for (std::size_t i = 0; i < kPayloadBytes; ++i) {
    payload.push_back(static_cast<char>('a' + i % 26));
  }
  LineServerConfig config;
  LineProtocolServer server(
      config, [&payload](std::string_view) -> std::optional<std::string> {
        return payload;
      });
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  Client client(port.value(), /*rcvbuf_bytes=*/4096);
  client.send("pull\n");
  const std::string got = client.recv_lines(1);
  ASSERT_EQ(got.size(), payload.size() + 1);
  EXPECT_EQ(got.back(), '\n');
  // Byte-exact, not just the right length: a short send that restarted
  // at the wrong offset would duplicate or drop a chunk mid-stream.
  EXPECT_TRUE(got.compare(0, payload.size(), payload) == 0);
  client.close();
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.responses_total, 1u);
  EXPECT_EQ(stats.slow_client_drops, 0u);
}

TEST(LineProtocolServer, StalledReaderIsDroppedNotWedged) {
  // The partial-write path's failure half: the client requests a huge
  // response and then never reads. Once the socket buffers fill, the
  // server's send times out (SO_SNDTIMEO = io_timeout_ms), write_all
  // gives up, and the connection is dropped as a slow client instead of
  // wedging the worker forever.
  LineServerConfig config;
  config.io_timeout_ms = 300;
  const std::string payload(16 * 1024 * 1024, 'z');
  LineProtocolServer server(
      config, [&payload](std::string_view) -> std::optional<std::string> {
        return payload;
      });
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  Client stalled(port.value(), /*rcvbuf_bytes=*/4096);
  stalled.send("pull\n");
  // Never read. The drop should land within roughly io_timeout_ms once
  // the in-flight buffers fill; poll well past that before declaring
  // the worker wedged.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().slow_client_drops == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.stats().slow_client_drops, 1u);

  // The worker is free again: stop() returns promptly instead of
  // waiting out a stuck 16 MB write.
  const auto begin = std::chrono::steady_clock::now();
  server.stop();
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, std::chrono::seconds(4));
  stalled.close();
}

TEST(LineProtocolServer, ConcurrentClientsKeepPerConnectionOrder) {
  LineServerConfig config;
  config.socket.worker_count = 3;
  std::mutex seen_mutex;
  std::vector<std::string> seen;
  LineProtocolServer server(
      config,
      [&](std::string_view line) -> std::optional<std::string> {
        {
          std::lock_guard<std::mutex> lock(seen_mutex);
          seen.emplace_back(line);
        }
        return std::string(line);
      });
  const auto port = server.start();
  ASSERT_TRUE(port.ok());

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kLines = 50;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(port.value());
      std::string expected;
      for (std::size_t i = 0; i < kLines; ++i) {
        // Built with += (not operator+(const char*, string&&)): the
        // rvalue-insert overload trips a GCC 12 -Wrestrict false
        // positive in char_traits.h once this TU grows large payloads.
        std::string line = "c";
        line += std::to_string(c);
        line += '-';
        line += std::to_string(i);
        client.send(line + "\n");
        expected += line + "\n";
      }
      // Echoes come back in send order: one worker owns the connection.
      EXPECT_EQ(client.recv_lines(kLines), expected);
    });
  }
  for (auto& client : clients) client.join();
  server.stop();
  EXPECT_EQ(server.stats().lines_total, kClients * kLines);
}

}  // namespace
}  // namespace causaliot::net
