// Registry semantics: instance identity under label reordering, exact
// concurrent counting through registry-resolved handles, and both
// serializations — including the Prometheus label-escaping round-trip.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "causaliot/obs/registry.hpp"

namespace causaliot::obs {
namespace {

TEST(ObsRegistry, SameLabelsAnyOrderNameTheSameInstance) {
  Registry registry;
  Counter& a = registry.counter("requests_total",
                                {{"method", "get"}, {"code", "200"}});
  Counter& b = registry.counter("requests_total",
                                {{"code", "200"}, {"method", "get"}});
  EXPECT_EQ(&a, &b);
  Counter& c = registry.counter("requests_total",
                                {{"code", "500"}, {"method", "get"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(ObsRegistry, RepeatedLookupReturnsStableReference) {
  Registry registry;
  Gauge& first = registry.gauge("depth");
  first.set(7);
  EXPECT_EQ(registry.gauge("depth").value(), 7);
  EXPECT_EQ(&registry.gauge("depth"), &first);
}

TEST(ObsRegistry, DuplicateLabelKeysAreRejected) {
  Registry registry;
  EXPECT_DEATH(registry.counter("dup_total", {{"k", "a"}, {"k", "b"}}),
               "duplicate label key");
}

TEST(ObsRegistry, ConcurrentIncrementsSumExactly) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Resolve once (the intended hot-path discipline), then hammer.
      Counter& counter = registry.counter("hits_total", {{"worker", "w"}});
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("hits_total", {{"worker", "w"}}).value(),
            kThreads * kPerThread);
}

// Inverse of the exposition escaping; a fixpoint check that every escaped
// byte maps back to the original label value.
std::string prometheus_unescape(const std::string& text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char next = text[++i];
      out += next == 'n' ? '\n' : next;
    } else {
      out += text[i];
    }
  }
  return out;
}

TEST(ObsRegistry, PrometheusLabelEscapingRoundTrips) {
  Registry registry;
  const std::string nasty = "a\\b\"c\nd";
  registry.counter("escaped_total", {{"tenant", nasty}}, "escape probe")
      .add(3);
  const std::string prom = registry.to_prometheus();
  const std::string expected =
      "escaped_total{tenant=\"a\\\\b\\\"c\\nd\"} 3\n";
  ASSERT_NE(prom.find(expected), std::string::npos) << prom;

  // Round trip: the escaped value decodes back to the original.
  const std::size_t open = prom.find("tenant=\"") + 8;
  const std::size_t close = prom.find("\"}", open);
  EXPECT_EQ(prometheus_unescape(prom.substr(open, close - open)), nasty);
}

TEST(ObsRegistry, PrometheusExposesHelpTypeAndSummaries) {
  Registry registry;
  registry.counter("events_total", {}, "Total events").add(5);
  registry.gauge("depth", {{"shard", "0"}}, "Queue depth").set(-2);
  Histogram& histogram =
      registry.histogram("latency_ns", {}, "Latency distribution");
  histogram.record(100);
  histogram.record(200);

  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("# HELP events_total Total events\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE events_total counter\n"), std::string::npos);
  EXPECT_NE(prom.find("events_total 5\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(prom.find("depth{shard=\"0\"} -2\n"), std::string::npos);
  // Histograms surface as summaries: quantile samples plus _sum/_count.
  EXPECT_NE(prom.find("# TYPE latency_ns summary\n"), std::string::npos);
  EXPECT_NE(prom.find("latency_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find("latency_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(prom.find("latency_ns_sum 300\n"), std::string::npos);
  EXPECT_NE(prom.find("latency_ns_count 2\n"), std::string::npos);
}

TEST(ObsRegistry, JsonSnapshotCarriesEveryKind) {
  Registry registry;
  registry.counter("a_total").add(1);
  registry.gauge("b_level").set(2);
  registry.histogram("c_ns").record(9);
  const std::string json = registry.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("{\"name\": \"a_total\", \"labels\": {}, \"kind\": "
                      "\"counter\", \"value\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"b_level\", \"labels\": {}, \"kind\": "
                      "\"gauge\", \"value\": 2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\", \"count\": 1, \"sum\": 9"),
            std::string::npos);
}

TEST(ObsRegistry, ExportOrderIsDeterministicAcrossRegistrationOrder) {
  // The exposition order — families sorted by name, instances sorted by
  // label vector — is a documented contract (registry.hpp): dashboards
  // diff /metrics payloads, the JSONL metrics log is compared across
  // runs, and the TimeSeriesStore walks the same order via
  // visit_scalars(). Two registries fed the same metrics in opposite
  // orders must serialize byte-identically.
  const auto populate = [](Registry& registry, bool reversed) {
    const std::vector<std::pair<std::string, std::string>> instances = {
        {"zeta_total", "1"}, {"alpha_total", "0"}, {"mid_total", "2"},
        {"alpha_total", "2"}, {"mid_total", "0"}, {"zeta_total", "0"},
    };
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto& [name, shard] =
          instances[reversed ? instances.size() - 1 - i : i];
      registry.counter(name, {{"shard", shard}}).add(7);
    }
    registry.gauge(reversed ? "b_level" : "a_level").set(1);
    registry.gauge(reversed ? "a_level" : "b_level").set(1);
  };
  Registry forward;
  Registry backward;
  populate(forward, false);
  populate(backward, true);
  EXPECT_EQ(forward.to_json(), backward.to_json());
  EXPECT_EQ(forward.to_prometheus(), backward.to_prometheus());

  // And the order really is sorted, not merely consistent.
  const std::string json = forward.to_json();
  EXPECT_LT(json.find("a_level"), json.find("alpha_total"));
  EXPECT_LT(json.find("alpha_total"), json.find("b_level"));
  EXPECT_LT(json.find("b_level"), json.find("mid_total"));
  EXPECT_LT(json.find("mid_total"), json.find("zeta_total"));
  const std::size_t alpha0 = json.find("\"alpha_total\"");
  const std::size_t alpha2 = json.find("\"alpha_total\"", alpha0 + 1);
  ASSERT_NE(alpha2, std::string::npos);
  EXPECT_LT(json.find("\"shard\": \"0\"", alpha0),
            json.find("\"shard\": \"2\"", alpha0));

  // visit_scalars() walks the identical order — the history sampler's
  // series discovery is as deterministic as the exports.
  std::vector<std::string> visited;
  forward.visit_scalars([&](const std::string& name, const Labels& labels,
                            MetricKind, double) {
    std::string key = name;
    for (const auto& [k, v] : labels) key += "{" + k + "=" + v + "}";
    visited.push_back(std::move(key));
  });
  const std::vector<std::string> expected = {
      "a_level",
      "alpha_total{shard=0}",
      "alpha_total{shard=2}",
      "b_level",
      "mid_total{shard=0}",
      "mid_total{shard=2}",
      "zeta_total{shard=0}",
      "zeta_total{shard=1}",
  };
  EXPECT_EQ(visited, expected);
}

TEST(ObsRegistry, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(ObsRegistry, ResetForTestDropsEveryFamily) {
  Registry registry;
  registry.counter("a_total").add(3);
  registry.gauge("b_level", {{"shard", "0"}}).set(1);
  ASSERT_EQ(registry.family_count(), 2u);

  registry.reset_for_test();
  EXPECT_EQ(registry.family_count(), 0u);
  // Re-registering after a reset starts from zero, so suites sharing a
  // registry (in particular Registry::global()) can assert exact values.
  EXPECT_EQ(registry.counter("a_total").value(), 0u);
}

}  // namespace
}  // namespace causaliot::obs
