// obs::HttpServer: protocol conformance over real loopback sockets
// (status codes, Content-Type/Content-Length, HEAD, limits, graceful
// shutdown) and the concurrent scrape-while-write guarantee — /metrics
// responses must stay well-formed and counter values monotone while
// writer threads hammer the registry. The concurrency tests run under
// the TSan CI job.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "causaliot/obs/http_server.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/util/strings.hpp"

namespace causaliot::obs {
namespace {

struct ClientResponse {
  bool connected = false;
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

// Sends `raw` to 127.0.0.1:port and reads until the server closes, then
// parses the response. Tolerates send failures after a partial write so
// limit tests (server responds and closes mid-upload) stay robust.
ClientResponse fetch_raw(std::uint16_t port, const std::string& raw) {
  ClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return out;
  }
  out.connected = true;
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n =
        ::send(fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string wire;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    wire.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) return out;
  out.body = wire.substr(head_end + 4);
  const std::vector<std::string> lines =
      util::split(wire.substr(0, head_end), '\n');
  if (!lines.empty()) {
    // "HTTP/1.1 200 OK\r"
    const std::vector<std::string> parts = util::split(lines[0], ' ');
    if (parts.size() >= 2) {
      out.status = static_cast<int>(
          util::parse_int(util::trim(parts[1])).value_or(0));
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::size_t colon = lines[i].find(':');
      if (colon == std::string::npos) continue;
      out.headers[std::string(util::trim(lines[i].substr(0, colon)))] =
          std::string(util::trim(lines[i].substr(colon + 1)));
    }
  }
  return out;
}

ClientResponse get(std::uint16_t port, const std::string& target,
                   const char* method = "GET") {
  return fetch_raw(port, std::string(method) + " " + target +
                             " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

TEST(HttpServer, ServesRegisteredRouteWithCorrectHeaders) {
  HttpServer server;
  server.handle("/hello", [](const HttpRequest& request) {
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.path, "/hello");
    return HttpResponse::text("hi there\n");
  });
  const auto port = server.start();
  ASSERT_TRUE(port.ok()) << port.error().to_string();
  EXPECT_NE(*port, 0);  // ephemeral bind reports the kernel's choice

  const ClientResponse response = get(*port, "/hello");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "hi there\n");
  EXPECT_EQ(response.headers.at("Content-Type"), "text/plain; charset=utf-8");
  EXPECT_EQ(response.headers.at("Content-Length"),
            std::to_string(response.body.size()));
  EXPECT_EQ(response.headers.at("Connection"), "close");
  server.stop();
}

TEST(HttpServer, QueryStringIsSplitFromPath) {
  HttpServer server;
  std::string seen_query;
  server.handle("/metrics", [&](const HttpRequest& request) {
    seen_query = request.query;
    return HttpResponse::text("ok");
  });
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(get(server.port(), "/metrics?format=prometheus").status, 200);
  EXPECT_EQ(seen_query, "format=prometheus");
  server.stop();
}

TEST(HttpServer, HeadSuppressesBodyButKeepsContentLength) {
  HttpServer server;
  server.handle("/doc", [](const HttpRequest&) {
    return HttpResponse::text("0123456789");
  });
  ASSERT_TRUE(server.start().ok());
  const ClientResponse response = get(server.port(), "/doc", "HEAD");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "");
  EXPECT_EQ(response.headers.at("Content-Length"), "10");
  server.stop();
}

TEST(HttpServer, UnknownRouteIs404) {
  HttpServer server;
  server.handle("/known", [](const HttpRequest&) {
    return HttpResponse::text("ok");
  });
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(get(server.port(), "/unknown").status, 404);
  server.stop();
}

TEST(HttpServer, NonGetMethodIs405) {
  HttpServer server;
  server.handle("/metrics", [](const HttpRequest&) {
    return HttpResponse::text("ok");
  });
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(fetch_raw(server.port(),
                      "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
                .status,
            405);
  server.stop();
}

TEST(HttpServer, MalformedRequestLineIs400) {
  HttpServer server;
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(fetch_raw(server.port(), "NONSENSE\r\n\r\n").status, 400);
  EXPECT_EQ(fetch_raw(server.port(), "GET /x SMTP/1.0\r\n\r\n").status, 400);
  EXPECT_EQ(fetch_raw(server.port(), "GET no-slash HTTP/1.1\r\n\r\n").status,
            400);
  server.stop();
}

TEST(HttpServer, OversizedHeaderBlockIs431) {
  HttpServerConfig config;
  config.max_request_bytes = 256;
  HttpServer server(config);
  ASSERT_TRUE(server.start().ok());
  const std::string request = "GET / HTTP/1.1\r\nX-Padding: " +
                              std::string(512, 'x') + "\r\n\r\n";
  EXPECT_EQ(fetch_raw(server.port(), request).status, 431);
  server.stop();
}

TEST(HttpServer, StalledClientGets408) {
  HttpServerConfig config;
  config.io_timeout_ms = 100;
  HttpServer server(config);
  ASSERT_TRUE(server.start().ok());
  // No CRLFCRLF terminator and the client just waits: the read times out.
  EXPECT_EQ(fetch_raw(server.port(), "GET / HTT").status, 408);
  server.stop();
}

TEST(HttpServer, StopIsGracefulAndIdempotent) {
  HttpServer server;
  server.handle("/x", [](const HttpRequest&) {
    return HttpResponse::text("ok");
  });
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();
  EXPECT_EQ(get(port, "/x").status, 200);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(get(port, "/x").connected);  // listener is gone
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(HttpServer, CountsRequestsOnRegistry) {
  Registry registry;
  HttpServerConfig config;
  config.registry = &registry;
  HttpServer server(config);
  server.handle("/ok", [](const HttpRequest&) {
    return HttpResponse::text("ok");
  });
  ASSERT_TRUE(server.start().ok());
  get(server.port(), "/ok");
  get(server.port(), "/missing");
  server.stop();
  EXPECT_EQ(registry.counter("obs_http_requests_total", {{"code", "200"}})
                .value(),
            1u);
  EXPECT_EQ(registry.counter("obs_http_requests_total", {{"code", "404"}})
                .value(),
            1u);
}

// Extracts the value of the `name value` sample line in a Prometheus
// document; -1 when absent.
long long sample_value(const std::string& text, const std::string& name) {
  for (const std::string& line : util::split(text, '\n')) {
    if (util::starts_with(line, name + " ")) {
      return util::parse_int(util::trim(line.substr(name.size() + 1)))
          .value_or(-1);
    }
  }
  return -1;
}

// The satellite guarantee: hammer /metrics from several client threads
// while writers increment counters. Every response must be a well-formed
// exposition document and the counter monotone across successive scrapes
// observed by the same client.
TEST(HttpServer, ConcurrentScrapeWhileWrite) {
  Registry registry;
  Counter& hammer = registry.counter("hammer_total", {},
                                     "scrape-while-write test counter");
  HttpServerConfig config;
  config.worker_count = 4;
  HttpServer server(config);
  server.handle("/metrics", [&registry](const HttpRequest&) {
    return HttpResponse::text(registry.to_prometheus(),
                              kContentTypePrometheus);
  });
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();

  std::atomic<bool> stop_writers{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&] {
      while (!stop_writers.load(std::memory_order_relaxed)) {
        hammer.increment();
      }
    });
  }

  constexpr int kClients = 4;
  constexpr int kScrapesPerClient = 20;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      long long previous = -1;
      for (int i = 0; i < kScrapesPerClient; ++i) {
        const ClientResponse response = get(port, "/metrics");
        if (response.status != 200 ||
            response.body.size() !=
                static_cast<std::size_t>(util::parse_int(
                    response.headers.at("Content-Length")).value_or(-1))) {
          failures.fetch_add(1);
          continue;
        }
        // Well-formed: every line is a comment or `name[{labels}] value`.
        for (const std::string& line : util::split(response.body, '\n')) {
          if (line.empty() || line[0] == '#') continue;
          const std::size_t space = line.rfind(' ');
          if (space == std::string::npos ||
              !util::parse_int(line.substr(space + 1)).ok()) {
            failures.fetch_add(1);
          }
        }
        const long long value = sample_value(response.body, "hammer_total");
        if (value < previous) failures.fetch_add(1);
        previous = value;
      }
      (void)c;
    });
  }
  for (std::thread& client : clients) client.join();
  stop_writers.store(true, std::memory_order_relaxed);
  for (std::thread& writer : writers) writer.join();
  server.stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_served(),
            static_cast<std::uint64_t>(kClients * kScrapesPerClient));

  // One quiescent scrape-equivalent: the document agrees with the final
  // counter value once writers stopped.
  EXPECT_EQ(sample_value(registry.to_prometheus(), "hammer_total"),
            static_cast<long long>(hammer.value()));
}

// Connections that arrive while the worker pool is saturated are
// answered 503 from the accept loop instead of queueing without bound.
TEST(HttpServer, OverloadedQueueAnswers503) {
  HttpServerConfig config;
  config.worker_count = 1;
  config.max_pending_connections = 1;
  HttpServer server(config);
  std::atomic<bool> release{false};
  server.handle("/slow", [&](const HttpRequest&) {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return HttpResponse::text("done");
  });
  ASSERT_TRUE(server.start().ok());

  // Occupy the only worker, then fill the 1-slot queue, then overflow.
  std::thread slow([&] { get(server.port(), "/slow"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread queued([&] { get(server.port(), "/slow"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const ClientResponse overflow = get(server.port(), "/slow");
  EXPECT_EQ(overflow.status, 503);
  release.store(true, std::memory_order_release);
  slow.join();
  queued.join();
  server.stop();
}

}  // namespace
}  // namespace causaliot::obs
