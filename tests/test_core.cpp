#include <gtest/gtest.h>

#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"
#include "causaliot/core/pipeline.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::core {
namespace {

using preprocess::BinaryEvent;
using preprocess::StateSeries;

StateSeries copy_pattern_series(std::size_t cycles) {
  // Device 0 is a random driver; device 1 copies its previous state with
  // 10% noise (a fully deterministic pattern would let TemporalPC
  // legitimately explain the edge away via the child's own lag).
  util::Rng rng(42);
  StateSeries series(2, {0, 0});
  double t = 0.0;
  for (std::size_t i = 0; i < cycles; ++i) {
    const auto driver = static_cast<std::uint8_t>(rng.uniform(2));
    series.apply({0, driver, t += 1});
    const std::uint8_t copy =
        rng.bernoulli(0.1) ? static_cast<std::uint8_t>(1 - driver) : driver;
    series.apply({1, copy, t += 1});
  }
  return series;
}

TEST(Pipeline, TrainOnSeriesProducesUsableModel) {
  Pipeline pipeline{PipelineConfig{}};
  const TrainedModel model =
      pipeline.train_on_series(copy_pattern_series(500), 2);
  EXPECT_EQ(model.lag, 2u);
  EXPECT_TRUE(model.graph.has_interaction(0, 1));
  EXPECT_GT(model.score_threshold, 0.0);
  EXPECT_LE(model.score_threshold, 1.0);
  EXPECT_EQ(model.training_scores.size(),
            copy_pattern_series(500).length() - 2);
  EXPECT_EQ(model.final_training_state.size(), 2u);
}

TEST(Pipeline, MiningThreadsDoNotChangeTheModel) {
  // mining_threads is plumbed through mining AND threshold calibration;
  // the whole trained model must be bit-identical to the serial run.
  const StateSeries series = copy_pattern_series(500);
  PipelineConfig config;
  config.mining_threads = 1;
  const TrainedModel serial = Pipeline(config).train_on_series(series, 2);
  config.mining_threads = 4;
  const TrainedModel pooled = Pipeline(config).train_on_series(series, 2);

  EXPECT_EQ(serial.graph.edges(), pooled.graph.edges());
  EXPECT_EQ(serial.score_threshold, pooled.score_threshold);
  ASSERT_EQ(serial.training_scores.size(), pooled.training_scores.size());
  for (std::size_t i = 0; i < serial.training_scores.size(); ++i) {
    EXPECT_EQ(serial.training_scores[i], pooled.training_scores[i]) << i;
  }
}

TEST(Pipeline, MonitorFromModelSeparatesScores) {
  PipelineConfig config;
  config.percentile_q = 99.0;
  Pipeline pipeline(config);
  const TrainedModel model =
      pipeline.train_on_series(copy_pattern_series(500), 2);
  detect::EventMonitor monitor =
      model.make_monitor(1, model.final_training_state);
  // A faithful copy scores as likely (score ~0.1); a violation (device 1
  // reporting the opposite of device 0's last state) scores ~0.9.
  monitor.score_event({0, 1, 1.0});
  const double faithful = monitor.score_event({1, 1, 2.0});
  monitor.score_event({0, 1, 3.0});
  monitor.score_event({1, 1, 4.0});
  monitor.score_event({0, 0, 5.0});
  const double violation = monitor.score_event({1, 1, 6.0});
  EXPECT_LT(faithful, 0.3);
  EXPECT_GT(violation, 0.6);
  EXPECT_GT(violation, model.score_threshold - 0.2);
}

TEST(MiningEvaluation, SymmetricScoring) {
  graph::InteractionGraph graph(3, 1);
  graph.set_causes(1, {{0, 1}});  // mined: 0 -> 1
  graph.set_causes(2, {{1, 1}});  // mined: 1 -> 2

  sim::GroundTruth gt;
  gt.add({0, 1, sim::InteractionSource::kAutomation,
          sim::ActivityCategory::kNone});  // TP
  gt.add({2, 0, sim::InteractionSource::kUserActivity,
          sim::ActivityCategory::kUseAfterUse});  // FN
  const MiningEvaluation eval = evaluate_mining(graph, gt);
  EXPECT_EQ(eval.true_positives, 1u);
  EXPECT_EQ(eval.false_positives, 1u);  // 1 -> 2 not in GT
  EXPECT_EQ(eval.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(eval.precision, 0.5);
  EXPECT_DOUBLE_EQ(eval.recall, 0.5);
}

TEST(MiningEvaluation, AsymmetricOracleAcceptsExtraPairs) {
  graph::InteractionGraph graph(3, 1);
  graph.set_causes(1, {{0, 1}});
  graph.set_causes(2, {{1, 1}});

  sim::GroundTruth expected;
  expected.add({0, 1, sim::InteractionSource::kAutomation,
                sim::ActivityCategory::kNone});
  sim::GroundTruth accepted = expected;
  accepted.add({1, 2, sim::InteractionSource::kUserActivity,
                sim::ActivityCategory::kUseAfterUse});
  const MiningEvaluation eval = evaluate_mining(graph, expected, accepted);
  // 1 -> 2 is oracle-accepted: counts toward precision, not recall.
  EXPECT_EQ(eval.false_positives, 0u);
  EXPECT_DOUBLE_EQ(eval.precision, 1.0);
  EXPECT_DOUBLE_EQ(eval.recall, 1.0);
}

TEST(RefineGroundTruth, KeepsFrequentAdjacentPairsAndSelfLoops) {
  sim::GroundTruth oracle;
  oracle.add({0, 1, sim::InteractionSource::kUserActivity,
              sim::ActivityCategory::kUseAfterUse});
  oracle.add({1, 2, sim::InteractionSource::kUserActivity,
              sim::ActivityCategory::kUseAfterUse});
  oracle.add({2, 2, sim::InteractionSource::kAutocorrelation,
              sim::ActivityCategory::kNone});

  // 0 -> 1 appears adjacent 3 times, 1 -> 2 only once.
  std::vector<BinaryEvent> events;
  for (int i = 0; i < 3; ++i) {
    events.push_back({0, 1, i * 10.0});
    events.push_back({1, 1, i * 10.0 + 1});
  }
  events.push_back({2, 1, 100.0});

  const sim::GroundTruth refined =
      refine_ground_truth(oracle, events, /*window=*/1, /*min_count=*/2);
  EXPECT_TRUE(refined.contains(0, 1));
  EXPECT_FALSE(refined.contains(1, 2));
  // Autocorrelation survives without adjacency support.
  EXPECT_TRUE(refined.contains(2, 2));
}

TEST(EvaluateCollective, ScoresCraftedChains) {
  // Model where device 1 never turns on unless device 0 was on, and a
  // stream with one injected chain the monitor can track.
  graph::InteractionGraph graph(2, 1);
  graph.set_causes(0, {});
  graph.set_causes(1, {{0, 1}});
  graph::Cpt& cpt0 = graph.cpt(0);
  for (int i = 0; i < 50; ++i) {
    cpt0.observe(cpt0.pack({}), 0);
    cpt0.observe(cpt0.pack({}), 1);
  }
  graph::Cpt& cpt1 = graph.cpt(1);
  for (int i = 0; i < 100; ++i) {
    cpt1.observe(cpt1.pack({1}), 1);
    cpt1.observe(cpt1.pack({0}), 0);
  }
  TrainedModel model;
  model.graph = std::move(graph);
  model.lag = 1;
  model.score_threshold = 0.9;
  model.final_training_state = {0, 0};

  inject::InjectionResult stream;
  stream.initial_state = {0, 0};
  // Benign prefix.
  stream.events.push_back({0, 1, 1.0});
  stream.chain_id.push_back(-1);
  stream.events.push_back({0, 0, 2.0});
  stream.chain_id.push_back(-1);
  // Chain: head = device 1 on while 0 off (anomalous), follower = device 0
  // turning on (benign-looking, score 0.5 < 0.9).
  stream.events.push_back({1, 1, 3.0});
  stream.chain_id.push_back(0);
  stream.events.push_back({0, 1, 4.0});
  stream.chain_id.push_back(0);
  stream.chain_lengths = {2};
  stream.chain_count = 1;
  stream.injected_count = 2;

  const CollectiveEvaluation eval = evaluate_collective(model, stream, 2);
  EXPECT_EQ(eval.total_chains, 1u);
  EXPECT_EQ(eval.detected_chains, 1u);
  EXPECT_EQ(eval.fully_tracked_chains, 1u);
  EXPECT_DOUBLE_EQ(eval.avg_anomaly_length, 2.0);
  EXPECT_DOUBLE_EQ(eval.avg_detection_length, 2.0);
  EXPECT_DOUBLE_EQ(eval.detected_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(eval.tracked_fraction(), 1.0);
}

TEST(Experiment, BuildsEndToEndOnTinyTrace) {
  sim::HomeProfile profile = sim::contextact_profile();
  profile.days = 3.0;
  ExperimentConfig config;
  config.seed = 123;
  const Experiment experiment = build_experiment(std::move(profile), config);
  EXPECT_EQ(experiment.catalog().size(), 22u);
  EXPECT_GT(experiment.train_series.event_count(), 100u);
  EXPECT_GT(experiment.test_series.event_count(), 10u);
  EXPECT_GT(experiment.model.graph.edge_count(), 10u);
  EXPECT_GT(experiment.ground_truth.size(), 20u);
  EXPECT_GT(experiment.model.score_threshold, 0.5);
  // The runtime stream covers the test period and is at least as long as
  // the sanitized test series.
  EXPECT_GE(experiment.test_runtime_events.size(),
            experiment.test_series.event_count());
}

TEST(Experiment, FreshTestSeriesIsIndependentButSameHome) {
  sim::HomeProfile profile = sim::contextact_profile();
  profile.days = 2.0;
  ExperimentConfig config;
  config.seed = 321;
  const Experiment experiment = build_experiment(std::move(profile), config);
  const StateSeries fresh = make_fresh_test_series(experiment, 2.0, 999);
  EXPECT_EQ(fresh.device_count(), experiment.catalog().size());
  EXPECT_GT(fresh.event_count(), 50u);
  // Different seed, different trace.
  const StateSeries fresh2 = make_fresh_test_series(experiment, 2.0, 1000);
  EXPECT_NE(fresh.event_count(), fresh2.event_count());
}

}  // namespace
}  // namespace causaliot::core
