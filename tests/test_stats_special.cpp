#include "causaliot/stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace causaliot::stats {
namespace {

TEST(RegularizedGamma, PAndQSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(3.0, 0.0), 1.0);
  EXPECT_NEAR(regularized_gamma_p(1.0, 700.0), 1.0, 1e-12);
}

TEST(RegularizedGamma, ExponentialSpecialCase) {
  // For a = 1, P(1, x) = 1 - exp(-x).
  for (double x : {0.2, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquaredSf, KnownValues) {
  // Reference values from standard chi-square tables.
  EXPECT_NEAR(chi_squared_sf(3.841, 1.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(6.635, 1.0), 0.01, 2e-4);
  EXPECT_NEAR(chi_squared_sf(5.991, 2.0), 0.05, 2e-4);
  EXPECT_NEAR(chi_squared_sf(9.210, 2.0), 0.01, 2e-4);
  EXPECT_NEAR(chi_squared_sf(18.307, 10.0), 0.05, 2e-4);
}

TEST(ChiSquaredSf, DofTwoIsExponential) {
  // chi2(2) survival is exp(-x/2).
  for (double x : {0.5, 2.0, 6.0, 15.0}) {
    EXPECT_NEAR(chi_squared_sf(x, 2.0), std::exp(-x / 2.0), 1e-12);
  }
}

TEST(ChiSquaredSf, MonotoneDecreasingInStatistic) {
  double previous = 1.1;
  for (double x = 0.0; x <= 30.0; x += 0.5) {
    const double sf = chi_squared_sf(x, 4.0);
    EXPECT_LE(sf, previous);
    previous = sf;
  }
}

TEST(ChiSquaredSf, NonPositiveStatisticIsCertain) {
  EXPECT_DOUBLE_EQ(chi_squared_sf(0.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(chi_squared_sf(-5.0, 3.0), 1.0);
}

// Property: quantile inverts the survival function over a dof sweep.
class ChiSquaredInverse : public ::testing::TestWithParam<double> {};

TEST_P(ChiSquaredInverse, QuantileInvertsSf) {
  const double dof = GetParam();
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double q = chi_squared_quantile(p, dof);
    // CDF(q) == p  <=>  SF(q) == 1 - p.
    EXPECT_NEAR(chi_squared_sf(q, dof), 1.0 - p, 1e-8)
        << "dof=" << dof << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(DofSweep, ChiSquaredInverse,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0, 10.0, 30.0,
                                           100.0));

TEST(ChiSquaredQuantile, MedianOfDof2) {
  // Median of chi2(2) is 2 ln 2.
  EXPECT_NEAR(chi_squared_quantile(0.5, 2.0), 2.0 * std::log(2.0), 1e-8);
}

}  // namespace
}  // namespace causaliot::stats
