// BoundedQueue: FIFO order, the three overflow policies with their
// counters, close()/drain semantics, and multi-producer conservation.
#include "causaliot/util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace causaliot::util {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> queue(4, OverflowPolicy::kBlock);
  EXPECT_EQ(queue.push(1), PushResult::kAccepted);
  EXPECT_EQ(queue.push(2), PushResult::kAccepted);
  EXPECT_EQ(queue.push(3), PushResult::kAccepted);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.try_pop(), 1);
  EXPECT_EQ(queue.try_pop(), 2);
  EXPECT_EQ(queue.try_pop(), 3);
  EXPECT_EQ(queue.try_pop(), std::nullopt);
  EXPECT_EQ(queue.counters().accepted, 3u);
}

TEST(BoundedQueue, RejectPolicyRefusesWhenFull) {
  BoundedQueue<int> queue(2, OverflowPolicy::kReject);
  EXPECT_EQ(queue.push(1), PushResult::kAccepted);
  EXPECT_EQ(queue.push(2), PushResult::kAccepted);
  EXPECT_EQ(queue.push(3), PushResult::kRejected);
  EXPECT_EQ(queue.push(4), PushResult::kRejected);
  const auto counters = queue.counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.rejected, 2u);
  // The queued items are untouched.
  EXPECT_EQ(queue.try_pop(), 1);
  EXPECT_EQ(queue.try_pop(), 2);
}

TEST(BoundedQueue, DropOldestEvictsTheFront) {
  BoundedQueue<int> queue(3, OverflowPolicy::kDropOldest);
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.push(4), PushResult::kDroppedOldest);
  EXPECT_EQ(queue.push(5), PushResult::kDroppedOldest);
  const auto counters = queue.counters();
  EXPECT_EQ(counters.accepted, 5u);
  EXPECT_EQ(counters.dropped_oldest, 2u);
  // 1 and 2 were the victims; order of the survivors is preserved.
  EXPECT_EQ(queue.try_pop(), 3);
  EXPECT_EQ(queue.try_pop(), 4);
  EXPECT_EQ(queue.try_pop(), 5);
}

TEST(BoundedQueue, BlockPolicyWaitsForSpace) {
  BoundedQueue<int> queue(1, OverflowPolicy::kBlock);
  ASSERT_EQ(queue.push(1), PushResult::kAccepted);

  std::atomic<bool> second_push_done{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.push(2), PushResult::kAccepted);  // must wait
    second_push_done.store(true);
  });
  // The producer cannot finish until we pop; give it a moment to park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_push_done.load());
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(second_push_done.load());
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_GE(queue.counters().block_waits, 1u);
}

TEST(BoundedQueue, CloseDrainsThenSignalsEndOfStream) {
  BoundedQueue<int> queue(4, OverflowPolicy::kBlock);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_EQ(queue.push(3), PushResult::kClosed);
  EXPECT_EQ(queue.counters().closed_rejects, 1u);
  // Queued items survive the close (drain)...
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  // ...then pop reports end-of-stream instead of blocking.
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1, OverflowPolicy::kBlock);
  ASSERT_EQ(queue.push(1), PushResult::kAccepted);
  std::thread producer([&] {
    EXPECT_EQ(queue.push(2), PushResult::kClosed);  // woken by close()
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
}

TEST(BoundedQueue, MultiProducerConservation) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  BoundedQueue<int> queue(16, OverflowPolicy::kBlock);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        EXPECT_EQ(queue.push(1), PushResult::kAccepted);
      }
    });
  }
  std::size_t consumed = 0;
  std::thread consumer([&] {
    while (queue.pop().has_value()) ++consumed;
  });
  for (auto& producer : producers) producer.join();
  queue.close();
  consumer.join();
  EXPECT_EQ(consumed, kProducers * kPerProducer);
  EXPECT_EQ(queue.counters().accepted, kProducers * kPerProducer);
}


TEST(BoundedQueue, CloseWhileProducersBlockedWakesAll) {
  // Several producers parked in the kBlock wait at close() time: every
  // one must wake with kClosed, nothing already queued may be lost, and
  // no blocked item may sneak in after the close.
  constexpr std::size_t kProducers = 4;
  BoundedQueue<int> queue(2, OverflowPolicy::kBlock);
  ASSERT_EQ(queue.push(1), PushResult::kAccepted);
  ASSERT_EQ(queue.push(2), PushResult::kAccepted);

  std::atomic<std::size_t> closed_results{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &closed_results] {
      if (queue.push(99) == PushResult::kClosed) ++closed_results;
    });
  }
  // Let every producer reach the wait (block_waits counts entries).
  while (queue.counters().block_waits < kProducers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.close();
  for (auto& producer : producers) producer.join();

  EXPECT_EQ(closed_results, kProducers);
  EXPECT_EQ(queue.counters().accepted, 2u);
  EXPECT_EQ(queue.counters().closed_rejects, kProducers);
  EXPECT_EQ(queue.counters().block_waits, kProducers);
  // The pre-close items drain intact; then end-of-stream.
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, PushUnboundedBypassesCapacityAndPolicy) {
  BoundedQueue<int> queue(1, OverflowPolicy::kReject);
  ASSERT_EQ(queue.push(1), PushResult::kAccepted);
  EXPECT_EQ(queue.push(2), PushResult::kRejected);
  // The side lane is never rejected and never blocks...
  EXPECT_EQ(queue.push_unbounded(3), PushResult::kAccepted);
  EXPECT_EQ(queue.size(), 2u);
  // ...but still respects close().
  queue.close();
  EXPECT_EQ(queue.push_unbounded(4), PushResult::kClosed);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BoundedQueue, EvictFilterShieldsControlItems) {
  // Negative items model control messages: kDropOldest must evict the
  // oldest *evictable* item and, when none is evictable, admit over
  // capacity rather than lose anything.
  BoundedQueue<int> queue(2, OverflowPolicy::kDropOldest,
                          [](const int& item) { return item >= 0; });
  ASSERT_EQ(queue.push_unbounded(-1), PushResult::kAccepted);
  ASSERT_EQ(queue.push(10), PushResult::kAccepted);
  // Full. The control (-1) is older but shielded: 10 is the victim.
  EXPECT_EQ(queue.push(11), PushResult::kDroppedOldest);
  EXPECT_EQ(queue.counters().dropped_oldest, 1u);

  // All-control queue: nothing evictable, the push is admitted anyway.
  BoundedQueue<int> controls(1, OverflowPolicy::kDropOldest,
                             [](const int& item) { return item >= 0; });
  ASSERT_EQ(controls.push_unbounded(-1), PushResult::kAccepted);
  EXPECT_EQ(controls.push(5), PushResult::kAccepted);
  EXPECT_EQ(controls.counters().dropped_oldest, 0u);
  EXPECT_EQ(controls.size(), 2u);
  EXPECT_EQ(controls.pop(), -1);
  EXPECT_EQ(controls.pop(), 5);
}

}  // namespace
}  // namespace causaliot::util
