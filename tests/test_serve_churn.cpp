// Dynamic tenant churn under live ingestion load — the TSan centerpiece
// for the network ingestion plane. While two survivor tenants replay the
// full runtime stream through submit(), a churn thread adds and removes
// ephemeral tenants over a loopback TCP socket (control verbs + event
// lines through net::LineProtocolServer -> IngestRouter). The bar:
//
//   * survivors' alarm sequences are bit-identical to a static run with
//     no churn and no sockets — churn must not perturb detection;
//   * the conservation identity holds exactly: everything the shard
//     queues accepted is a processed event, an orphaned event, or a
//     control message — nothing lost, nothing duplicated;
//   * directory counters reconcile with what the churn thread actually
//     managed to do.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "causaliot/core/experiment.hpp"
#include "causaliot/net/line_server.hpp"
#include "causaliot/serve/ingest.hpp"
#include "causaliot/serve/service.hpp"

namespace causaliot::serve {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::HomeProfile profile = sim::contextact_profile();
    profile.days = 6.0;
    core::ExperimentConfig config;
    config.seed = 77;  // same home as test_serve: known to alarm
    experiment_ = new core::Experiment(
        core::build_experiment(std::move(profile), config));
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static std::shared_ptr<const ModelSnapshot> snapshot() {
    const core::TrainedModel& model = experiment_->model;
    return make_snapshot(model.graph, model.score_threshold,
                         model.laplace_alpha, /*version=*/1);
  }

  static ServiceConfig service_config() {
    ServiceConfig config;
    config.shard_count = 2;
    config.queue_capacity = 256;
    config.overflow = util::OverflowPolicy::kBlock;  // lossless survivors
    config.session.k_max = 3;
    return config;
  }

  static core::Experiment* experiment_;
};

core::Experiment* ChurnTest::experiment_ = nullptr;

struct AlarmLog {
  std::mutex mutex;
  std::map<std::string, std::vector<ServedAlarm>> by_tenant;

  AlarmCallback callback() {
    return [this](const ServedAlarm& alarm) {
      std::lock_guard<std::mutex> lock(mutex);
      by_tenant[alarm.tenant_name].push_back(alarm);
    };
  }
};

void expect_bit_identical(const std::vector<ServedAlarm>& got,
                          const std::vector<ServedAlarm>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].report.entries.size(), want[i].report.entries.size())
        << "alarm " << i;
    for (std::size_t e = 0; e < want[i].report.entries.size(); ++e) {
      EXPECT_EQ(got[i].report.entries[e].stream_index,
                want[i].report.entries[e].stream_index);
      EXPECT_EQ(got[i].report.entries[e].event,
                want[i].report.entries[e].event);
      // Same code path, same doubles: bit-identical, not approximate.
      EXPECT_EQ(got[i].report.entries[e].score,
                want[i].report.entries[e].score);
    }
    // Churn must not perturb the ranked root-cause attribution either:
    // device order, blame doubles, and walk paths all reproduce exactly.
    const auto& got_ranked = got[i].root_causes.ranked;
    const auto& want_ranked = want[i].root_causes.ranked;
    ASSERT_EQ(got_ranked.size(), want_ranked.size()) << "alarm " << i;
    EXPECT_FALSE(want_ranked.empty()) << "alarm " << i;
    for (std::size_t r = 0; r < want_ranked.size(); ++r) {
      EXPECT_EQ(got_ranked[r].device, want_ranked[r].device);
      EXPECT_EQ(got_ranked[r].score, want_ranked[r].score);  // bitwise
      EXPECT_EQ(got_ranked[r].flagged, want_ranked[r].flagged);
      EXPECT_EQ(got_ranked[r].path, want_ranked[r].path);
    }
    EXPECT_EQ(got[i].root_causes.edges_walked,
              want[i].root_causes.edges_walked);
  }
}

/// Blocking loopback client for the churn stream; reads are drained on
/// a second thread so server responses can never wedge the writer.
class ChurnClient {
 public:
  explicit ChurnClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                           sizeof(address)) == 0;
    drainer_ = std::thread([this] {
      char buffer[4096];
      std::string pending;
      while (true) {
        const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (got <= 0) break;
        pending.append(buffer, static_cast<std::size_t>(got));
        std::size_t newline;
        while ((newline = pending.find('\n')) != std::string::npos) {
          const std::string line = pending.substr(0, newline);
          pending.erase(0, newline + 1);
          std::lock_guard<std::mutex> lock(mutex_);
          responses_.push_back(line);
        }
      }
    });
  }
  ~ChurnClient() {
    finish();
  }

  bool connected() const { return connected_; }

  void send(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }

  /// Half-closes the write side and joins the response drainer (the
  /// server answers everything already received, then EOFs).
  std::vector<std::string> finish() {
    if (fd_ >= 0 && !finished_) {
      finished_ = true;
      ::shutdown(fd_, SHUT_WR);
      drainer_.join();
      ::close(fd_);
      fd_ = -1;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return responses_;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  bool finished_ = false;
  std::thread drainer_;
  std::mutex mutex_;
  std::vector<std::string> responses_;
};

TEST_F(ChurnTest, SurvivorsUnperturbedAndNothingLost) {
  const auto& events = experiment_->test_runtime_events;
  const std::vector<std::uint8_t> initial_state =
      experiment_->test_series.snapshot_state(0);

  // --- Reference: static run, no churn, no sockets. ---
  AlarmLog static_log;
  {
    DetectionService service(service_config(), static_log.callback());
    std::vector<TenantHandle> handles;
    handles.push_back(service.add_tenant("s0", snapshot(), initial_state));
    handles.push_back(service.add_tenant("s1", snapshot(), initial_state));
    service.start();
    replay_trace(service, handles, events);
    service.shutdown();
  }
  ASSERT_FALSE(static_log.by_tenant["s0"].empty());  // bar is meaningful

  // --- Churn run: same survivors + socket-driven tenant churn. The
  // ephemerals instantiate from a registered template, so the 25 cycles
  // also exercise skeleton interning and copy-on-write sharing under
  // live add/remove (the weak intern pool must drain on eviction). ---
  AlarmLog churn_log;
  TemplateRegistry registry;
  auto fleet = registry.publish(
      "fleet", experiment_->model.graph, experiment_->model.score_threshold,
      experiment_->model.laplace_alpha, /*version=*/1);
  ASSERT_NE(fleet, nullptr);
  ServiceConfig churn_config = service_config();
  churn_config.templates = &registry;
  DetectionService service(churn_config, churn_log.callback());
  std::vector<TenantHandle> survivors;
  survivors.push_back(service.add_tenant("s0", snapshot(), initial_state));
  survivors.push_back(service.add_tenant("s1", snapshot(), initial_state));

  IngestConfig ingest;
  ingest.model = snapshot();
  ingest.initial_state = initial_state;
  IngestRouter router(service, experiment_->catalog(), std::move(ingest));
  net::LineProtocolServer tcp(
      {}, [&router](std::string_view line) {
        return IngestRouter::response_line(router.handle_line(line));
      });

  service.start();
  const auto port = tcp.start();
  ASSERT_TRUE(port.ok());

  // Pre-render a small burst of event lines (device names from the
  // catalog) sent to each ephemeral tenant between its add and remove.
  constexpr std::size_t kCycles = 25;
  constexpr std::size_t kBurst = 20;
  std::string burst_template;
  for (std::size_t i = 0; i < kBurst; ++i) {
    const auto& event = events[i % events.size()];
    burst_template +=
        "{\"tenant\": \"@\", \"device\": \"" +
        experiment_->catalog().info(event.device).name +
        "\", \"value\": " + std::to_string(static_cast<int>(event.state)) +
        ", \"timestamp\": " + std::to_string(event.timestamp) + "}\n";
  }

  std::thread churner([&] {
    ChurnClient client(port.value());
    ASSERT_TRUE(client.connected());
    for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
      const std::string name = "eph-" + std::to_string(cycle);
      std::string script = "{\"op\": \"add_tenant\", \"tenant\": \"" +
                           name + "\", \"template\": \"fleet\"}\n";
      std::string burst = burst_template;
      std::size_t at;
      while ((at = burst.find('@')) != std::string::npos) {
        burst.replace(at, 1, name);
      }
      script += burst;
      script +=
          "{\"op\": \"remove_tenant\", \"tenant\": \"" + name + "\"}\n";
      client.send(script);
    }
    const std::vector<std::string> responses = client.finish();
    // Controls answer on the wire; event lines are quiet. Every control
    // must have succeeded — per-connection ordering guarantees the add
    // is processed before the events and the remove.
    ASSERT_EQ(responses.size(), 2 * kCycles);
    for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
      EXPECT_EQ(responses[2 * cycle], "OK add_tenant");
      EXPECT_EQ(responses[2 * cycle + 1], "OK remove_tenant");
    }
  });

  // Survivors replay the full stream while the churn rages.
  const ReplayStats replay = replay_trace(service, survivors, events);
  EXPECT_EQ(replay.rejected, 0u);  // kBlock is lossless

  churner.join();
  tcp.stop();
  service.shutdown();

  // Survivors' alarms: bit-identical to the static run.
  expect_bit_identical(churn_log.by_tenant["s0"],
                       static_log.by_tenant["s0"]);
  expect_bit_identical(churn_log.by_tenant["s1"],
                       static_log.by_tenant["s1"]);

  // Directory accounting reconciles with what actually happened.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenants_added, 2 + kCycles);
  EXPECT_EQ(stats.tenants_removed, kCycles);
  EXPECT_EQ(stats.tenant_count, 2u);

  // Conservation: every queue admission is a processed event, an
  // orphaned event, or one of the churn controls (kCycles adds +
  // kCycles removes; the survivors were added pre-start, no control).
  EXPECT_EQ(stats.queue_accepted,
            stats.events_processed + stats.events_orphaned + 2 * kCycles);
  // Nothing the producers submitted evaporated: submit() admissions
  // equal processed + orphaned (kBlock: no drops, no rejects).
  EXPECT_EQ(stats.events_submitted,
            stats.events_processed + stats.events_orphaned);
  EXPECT_EQ(stats.queue_dropped_oldest, 0u);
  EXPECT_EQ(stats.queue_rejected, 0u);
  EXPECT_EQ(router.accepted_total(), kCycles * kBurst);

  // Template plumbing reconciles too: every ephemeral's shared model
  // bytes were released with its removal, leaving only the survivors'
  // private snapshots (resident == equivalent again), and evicting the
  // template drains the weak skeleton intern pool once the last
  // reference drops.
  EXPECT_EQ(registry.template_count(), 1u);
  EXPECT_EQ(registry.skeleton_count(), 1u);
  const DetectionService::ModelStats models = service.model_stats();
  EXPECT_EQ(models.resident_bytes, models.private_equivalent_bytes);
  EXPECT_GT(models.resident_bytes, 0u);
  EXPECT_TRUE(registry.evict("fleet"));
  fleet.reset();
  EXPECT_EQ(registry.skeleton_count(), 0u);
}

TEST_F(ChurnTest, RemovedTenantFlushesItsPendingWindow) {
  // A tenant mid-anomaly-window at remove time must flush that window
  // through the alarm callback (same contract as shutdown()), not drop
  // it silently with the session.
  const auto& events = experiment_->test_runtime_events;
  AlarmLog log;
  DetectionService service(service_config(), log.callback());
  const TenantHandle doomed = service.add_tenant(
      "doomed", snapshot(), experiment_->test_series.snapshot_state(0));
  service.start();

  // Feed the full stream; the final window is still open afterwards.
  for (const auto& event : events) {
    ASSERT_EQ(service.submit(doomed, event),
              DetectionService::SubmitResult::kAccepted);
  }
  ASSERT_TRUE(service.remove_tenant(doomed));
  service.shutdown();

  // The static reference run flushes via shutdown(); the removed tenant
  // must have produced the identical sequence via the removal path.
  AlarmLog reference;
  {
    DetectionService ref_service(service_config(), reference.callback());
    const TenantHandle tenant = ref_service.add_tenant(
        "doomed", snapshot(), experiment_->test_series.snapshot_state(0));
    ref_service.start();
    for (const auto& event : events) {
      ASSERT_EQ(ref_service.submit(tenant, event),
                DetectionService::SubmitResult::kAccepted);
    }
    ref_service.shutdown();
  }
  expect_bit_identical(log.by_tenant["doomed"],
                       reference.by_tenant["doomed"]);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.events_processed, events.size());
  EXPECT_EQ(stats.events_orphaned, 0u);
  EXPECT_EQ(stats.tenant_count, 0u);
}

}  // namespace
}  // namespace causaliot::serve
