#include <gtest/gtest.h>

#include "causaliot/detect/monitor.hpp"
#include "causaliot/detect/phantom_state_machine.hpp"

namespace causaliot::detect {
namespace {

using preprocess::BinaryEvent;

TEST(PhantomStateMachine, WindowPrefilledWithInitialState) {
  PhantomStateMachine machine(3, 2, {1, 0, 1});
  for (std::uint32_t lag = 0; lag <= 2; ++lag) {
    EXPECT_EQ(machine.state_at_lag(0, lag), 1);
    EXPECT_EQ(machine.state_at_lag(1, lag), 0);
    EXPECT_EQ(machine.state_at_lag(2, lag), 1);
  }
}

TEST(PhantomStateMachine, UpdateSlidesWindow) {
  PhantomStateMachine machine(2, 2, {0, 0});
  machine.update({0, 1, 1.0});  // S^1 = (1, 0)
  machine.update({1, 1, 2.0});  // S^2 = (1, 1)
  EXPECT_EQ(machine.state_at_lag(0, 0), 1);
  EXPECT_EQ(machine.state_at_lag(1, 0), 1);
  EXPECT_EQ(machine.state_at_lag(1, 1), 0);  // S^1
  EXPECT_EQ(machine.state_at_lag(0, 1), 1);
  EXPECT_EQ(machine.state_at_lag(0, 2), 0);  // S^0
  EXPECT_EQ(machine.events_seen(), 2u);
}

TEST(PhantomStateMachine, OldStatesRotateOut) {
  PhantomStateMachine machine(1, 1, {0});
  machine.update({0, 1, 1.0});
  machine.update({0, 0, 2.0});
  machine.update({0, 1, 3.0});
  // Window holds only S^2 and S^3 now.
  EXPECT_EQ(machine.state_at_lag(0, 0), 1);
  EXPECT_EQ(machine.state_at_lag(0, 1), 0);
}

TEST(PhantomStateMachine, CauseValuesFollowInputOrder) {
  PhantomStateMachine machine(3, 2, {0, 0, 0});
  machine.update({2, 1, 1.0});
  machine.update({0, 1, 2.0});
  const std::vector<graph::LaggedNode> causes{{2, 1}, {0, 1}, {2, 2}};
  EXPECT_EQ(machine.cause_values(causes),
            (std::vector<std::uint8_t>{1, 0, 0}));
}

TEST(PhantomStateMachine, CurrentStateCopy) {
  PhantomStateMachine machine(2, 1, {0, 1});
  machine.update({0, 1, 1.0});
  EXPECT_EQ(machine.current_state(), (std::vector<std::uint8_t>{1, 1}));
}

// A graph where device 1's only cause is device 0 at lag 1, with
// P(1 turns on | 0 was on) = 1 and P(1 turns on | 0 was off) = 0.
graph::InteractionGraph copy_graph() {
  graph::InteractionGraph graph(2, 2);
  graph.set_causes(0, {});
  graph.set_causes(1, {{0, 1}});
  graph::Cpt& cpt0 = graph.cpt(0);
  for (int i = 0; i < 50; ++i) {
    cpt0.observe(cpt0.pack({}), 0);
    cpt0.observe(cpt0.pack({}), 1);
  }
  graph::Cpt& cpt1 = graph.cpt(1);
  for (int i = 0; i < 100; ++i) {
    cpt1.observe(cpt1.pack({1}), 1);
    cpt1.observe(cpt1.pack({0}), 0);
  }
  return graph;
}

TEST(EventMonitor, ScoreReflectsCpt) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  config.score_threshold = 0.5;
  EventMonitor monitor(graph, config, {0, 0});
  // Device 0 turns on: marginal is 50/50 -> score 0.5.
  EXPECT_NEAR(monitor.score_event({0, 1, 1.0}), 0.5, 1e-9);
  // Device 1 turns on right after 0 was on: fully expected -> score 0.
  EXPECT_NEAR(monitor.score_event({1, 1, 2.0}), 0.0, 1e-9);
}

TEST(EventMonitor, AnomalousEventScoresOne) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  EventMonitor monitor(graph, config, {0, 0});
  // Device 1 turns on while device 0 was off: never observed.
  EXPECT_NEAR(monitor.score_event({1, 1, 1.0}), 1.0, 1e-9);
}

TEST(EventMonitor, ContextualAlarmAtKmaxOne) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  config.score_threshold = 0.9;
  config.k_max = 1;
  EventMonitor monitor(graph, config, {0, 0});
  EXPECT_FALSE(monitor.process({0, 1, 1.0}).has_value());  // score 0.5
  const auto alarm = monitor.process({1, 0, 2.0});  // 1 stays off given on
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->chain_length(), 1u);
  EXPECT_EQ(alarm->contextual().event.device, 1u);
  EXPECT_NEAR(alarm->contextual().score, 1.0, 1e-9);
  EXPECT_EQ(alarm->contextual().causes.size(), 1u);
  EXPECT_EQ(alarm->contextual().cause_values[0], 1u);
}

TEST(EventMonitor, CollectiveTrackingUntilKmax) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  config.score_threshold = 0.9;
  config.k_max = 2;
  EventMonitor monitor(graph, config, {0, 0});
  // Head: device 1 turns on in a context where it never does.
  EXPECT_FALSE(monitor.process({1, 1, 1.0}).has_value());  // W = [head]
  // Follower: device 0 turning on is unsurprising (score 0.5 < c).
  const auto alarm = monitor.process({0, 1, 2.0});
  ASSERT_TRUE(alarm.has_value());
  EXPECT_EQ(alarm->chain_length(), 2u);
  EXPECT_FALSE(alarm->ended_by_abrupt_event);
  EXPECT_EQ(alarm->entries[0].event.device, 1u);
  EXPECT_EQ(alarm->entries[1].event.device, 0u);
}

TEST(EventMonitor, AbruptEventFlushesWindow) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  config.score_threshold = 0.9;
  config.k_max = 3;
  EventMonitor monitor(graph, config, {0, 0});
  EXPECT_FALSE(monitor.process({1, 1, 1.0}).has_value());  // head (score 1)
  EXPECT_FALSE(monitor.process({0, 1, 2.0}).has_value());  // follower
  // Another fully anomalous event interrupts tracking: device 1 turns off
  // while device 0 was on (never observed).
  const auto alarm = monitor.process({1, 0, 3.0});
  ASSERT_TRUE(alarm.has_value());
  EXPECT_TRUE(alarm->ended_by_abrupt_event);
  EXPECT_EQ(alarm->chain_length(), 2u);  // the abrupt event is not in W
}

TEST(EventMonitor, FinishFlushesPendingWindow) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  config.score_threshold = 0.9;
  config.k_max = 5;
  EventMonitor monitor(graph, config, {0, 0});
  EXPECT_FALSE(monitor.process({1, 1, 1.0}).has_value());
  const auto tail = monitor.finish();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->chain_length(), 1u);
  EXPECT_FALSE(monitor.finish().has_value());  // only flushes once
}

TEST(EventMonitor, NormalStreamRaisesNoAlarms) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  config.score_threshold = 0.9;
  config.k_max = 3;
  EventMonitor monitor(graph, config, {0, 0});
  // The generating pattern: 0 flips, 1 copies.
  std::uint8_t value = 1;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(monitor.process({0, value, i * 2.0}).has_value());
    EXPECT_FALSE(monitor.process({1, value, i * 2.0 + 1}).has_value());
    value ^= 1;
  }
  EXPECT_FALSE(monitor.finish().has_value());
}

TEST(EventMonitor, LaplaceSoftensUnseenContexts) {
  const graph::InteractionGraph graph = copy_graph();
  MonitorConfig config;
  config.laplace_alpha = 1.0;
  EventMonitor monitor(graph, config, {0, 0});
  monitor.score_event({0, 1, 0.5});
  // Seen context (0 on): (100 + 1) / (100 + 2).
  EXPECT_NEAR(monitor.score_event({1, 1, 1.0}), 1.0 - 101.0 / 102.0, 1e-9);
}

TEST(ThresholdCalculator, ScoresAndPercentile) {
  const graph::InteractionGraph graph = copy_graph();
  // Replay the generating pattern as a series.
  preprocess::StateSeries series(2, {0, 0});
  std::uint8_t value = 1;
  for (int i = 0; i < 20; ++i) {
    series.apply({0, value, i * 2.0});
    series.apply({1, value, i * 2.0 + 1});
    value ^= 1;
  }
  const std::vector<double> scores =
      ThresholdCalculator::training_scores(graph, series);
  ASSERT_EQ(scores.size(), series.length() - 2);
  // Device-1 events are perfectly predicted (score 0); device-0 events
  // score 0.5 (marginal).
  for (double score : scores) {
    EXPECT_TRUE(std::abs(score) < 1e-9 || std::abs(score - 0.5) < 1e-9);
  }
  const double threshold =
      ThresholdCalculator::threshold_at_percentile(scores, 99.0);
  EXPECT_NEAR(threshold, 0.5, 1e-9);
  EXPECT_NEAR(ThresholdCalculator::threshold_at_percentile(scores, 0.0),
              0.0, 1e-9);
}

}  // namespace
}  // namespace causaliot::detect
