// Histogram quantile edge cases (the satellite fix: 0-sample snapshots,
// all-zero samples, and last-bucket saturation reporting the observed max
// instead of a fabricated 2^47 bound) plus counter/gauge exactness under
// concurrency.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "causaliot/obs/metrics.hpp"

namespace causaliot::obs {
namespace {

TEST(ObsHistogram, ZeroSampleSnapshotIsAllZero) {
  Histogram histogram;
  const Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p95, 0u);
  EXPECT_EQ(s.p99, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(ObsHistogram, AllSamplesInBucketZero) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record(0);
  const Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p99, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(histogram.bucket_count_at(0), 100u);
}

TEST(ObsHistogram, SaturatedLastBucketReportsObservedMax) {
  Histogram histogram;
  // bit_width(2^55) = 56 >= 48, so every sample lands in the open-ended
  // last bucket. The quantiles must report the true max, not the nominal
  // 2^47 - 1 upper bound of a 48-bucket ladder.
  const std::uint64_t huge = std::uint64_t{1} << 55;
  for (int i = 0; i < 10; ++i) histogram.record(huge + i);
  const Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.max, huge + 9);
  EXPECT_EQ(s.p50, huge + 9);
  EXPECT_EQ(s.p99, huge + 9);
  EXPECT_EQ(histogram.bucket_count_at(Histogram::kBucketCount - 1), 10u);
}

TEST(ObsHistogram, QuantilesAreConservativeBucketBounds) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.record(v);
  const Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  // Rank 500 falls in bucket 9 ([256, 511], cumulative 511): the reported
  // p50 is that bucket's upper bound.
  EXPECT_EQ(s.p50, 511u);
  // Ranks 950 and 990 fall in bucket 10, whose nominal bound 1023 clamps
  // to the observed max.
  EXPECT_EQ(s.p95, 1000u);
  EXPECT_EQ(s.p99, 1000u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(ObsHistogram, SingleSampleClampsEveryQuantileToMax) {
  Histogram histogram;
  histogram.record(5);
  const Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.p50, 5u);
  EXPECT_EQ(s.p95, 5u);
  EXPECT_EQ(s.p99, 5u);
  EXPECT_EQ(s.max, 5u);
  EXPECT_EQ(s.sum, 5u);
}

TEST(ObsHistogram, ConcurrentRecordsCountExactly) {
  Histogram histogram;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) histogram.record(3);
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.sum, static_cast<std::uint64_t>(kThreads * kPerThread) * 3);
  EXPECT_EQ(s.max, 3u);
}

TEST(ObsGauge, SetAndAddAreLastWriteWins) {
  Gauge gauge;
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
}

}  // namespace
}  // namespace causaliot::obs
