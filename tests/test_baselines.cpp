#include <gtest/gtest.h>

#include <map>

#include "causaliot/baselines/hawatcher.hpp"
#include "causaliot/baselines/markov.hpp"
#include "causaliot/baselines/ocsvm.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot::baselines {
namespace {

using preprocess::BinaryEvent;
using preprocess::StateSeries;

// Two devices, strict alternation: 0 on, 1 on, 0 off, 1 off, repeat.
StateSeries alternating_series(std::size_t cycles) {
  StateSeries series(2, {0, 0});
  double t = 0.0;
  for (std::size_t i = 0; i < cycles; ++i) {
    series.apply({0, 1, t += 1});
    series.apply({1, 1, t += 1});
    series.apply({0, 0, t += 1});
    series.apply({1, 0, t += 1});
  }
  return series;
}

TEST(Markov, AcceptsSeenTransitions) {
  MarkovDetector detector(2);
  const StateSeries series = alternating_series(50);
  detector.fit(series);
  EXPECT_GT(detector.transition_count(), 0u);

  detector.reset({0, 0});
  // Replay the training pattern: after a warm-up prefix, transitions are
  // all known.
  std::size_t flagged = 0;
  std::size_t total = 0;
  for (std::size_t cycle = 0; cycle < 10; ++cycle) {
    for (const BinaryEvent event :
         {BinaryEvent{0, 1, 0.0}, BinaryEvent{1, 1, 0.0},
          BinaryEvent{0, 0, 0.0}, BinaryEvent{1, 0, 0.0}}) {
      flagged += detector.is_anomalous(event);
      ++total;
    }
  }
  EXPECT_LT(flagged, total / 4);  // only warm-up disagreements
}

TEST(Markov, FlagsUnseenTransition) {
  MarkovDetector detector(2);
  detector.fit(alternating_series(50));
  detector.reset({0, 0});
  detector.is_anomalous({0, 1, 0.0});
  detector.is_anomalous({1, 1, 0.0});
  // Out-of-pattern: device 0 turning on again was never observed here.
  EXPECT_TRUE(detector.is_anomalous({0, 0, 0.0}) ||
              detector.is_anomalous({0, 1, 0.0}));
}

TEST(Markov, OrderOneForgetsLongHistory) {
  // With order 1 only the immediately preceding state matters.
  MarkovDetector detector(1);
  detector.fit(alternating_series(50));
  detector.reset({0, 0});
  EXPECT_FALSE(detector.is_anomalous({0, 1, 0.0}));
}

TEST(Ocsvm, TrainsAndAcceptsTrainingLikeStates) {
  // States cluster around two patterns; a far-away state is an outlier.
  util::Rng rng(1);
  StateSeries series(8, std::vector<std::uint8_t>(8, 0));
  double t = 0.0;
  for (int i = 0; i < 600; ++i) {
    // Flip only devices 0-2 (the "normal" subspace).
    const auto device = static_cast<telemetry::DeviceId>(rng.uniform(3));
    series.apply({device, static_cast<std::uint8_t>(rng.uniform(2)),
                  t += 1});
  }
  OcsvmConfig config;
  config.nu = 0.05;
  OcsvmDetector detector(config);
  detector.fit(series);
  EXPECT_GT(detector.support_vector_count(), 0u);

  // In-distribution states score above the boundary most of the time.
  std::size_t inlier_accepts = 0;
  for (std::size_t j = 0; j < series.length(); j += 10) {
    inlier_accepts +=
        detector.decision_value(series.snapshot_state(j)) >= 0.0;
  }
  EXPECT_GT(inlier_accepts, series.length() / 10 / 2);

  // A state with all eight devices on was never seen.
  EXPECT_LT(detector.decision_value(std::vector<std::uint8_t>(8, 1)), 0.0);
}

TEST(Ocsvm, IsAnomalousTracksState) {
  util::Rng rng(2);
  StateSeries series(4, std::vector<std::uint8_t>(4, 0));
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    series.apply({0, static_cast<std::uint8_t>(rng.uniform(2)), t += 1});
  }
  OcsvmDetector detector;
  detector.fit(series);
  detector.reset({0, 0, 0, 0});
  EXPECT_FALSE(detector.is_anomalous({0, 1, 0.0}));
  // Devices 1-3 never active in training: all-on is anomalous.
  detector.is_anomalous({1, 1, 0.0});
  detector.is_anomalous({2, 1, 0.0});
  EXPECT_TRUE(detector.is_anomalous({3, 1, 0.0}));
}

telemetry::DeviceCatalog two_room_catalog() {
  telemetry::DeviceCatalog catalog;
  EXPECT_TRUE(catalog
                  .add({"pe_kitchen", "kitchen",
                        telemetry::AttributeType::kPresenceSensor,
                        telemetry::ValueType::kBinary})
                  .ok());
  EXPECT_TRUE(catalog
                  .add({"lamp_kitchen", "kitchen",
                        telemetry::AttributeType::kDimmer,
                        telemetry::ValueType::kResponsiveNumeric})
                  .ok());
  EXPECT_TRUE(catalog
                  .add({"pe_living", "living",
                        telemetry::AttributeType::kPresenceSensor,
                        telemetry::ValueType::kBinary})
                  .ok());
  return catalog;
}

StateSeries presence_lamp_series(std::size_t cycles) {
  // Lamp is on exactly while kitchen presence is on.
  StateSeries series(3, {0, 0, 0});
  double t = 0.0;
  for (std::size_t i = 0; i < cycles; ++i) {
    series.apply({0, 1, t += 1});
    series.apply({1, 1, t += 1});
    series.apply({0, 0, t += 1});
    series.apply({1, 0, t += 1});
    series.apply({2, 1, t += 1});
    series.apply({2, 0, t += 1});
  }
  return series;
}

TEST(HaWatcher, MinesSameRoomRules) {
  const telemetry::DeviceCatalog catalog = two_room_catalog();
  HaWatcherConfig config;
  config.min_support = 10;
  config.min_confidence = 0.9;
  HaWatcherDetector detector(catalog, config);
  detector.fit(presence_lamp_series(60));
  EXPECT_FALSE(detector.rules().empty());
  for (const auto& rule : detector.rules()) {
    EXPECT_EQ(catalog.info(rule.antecedent).room,
              catalog.info(rule.consequent).room);
    EXPECT_GE(rule.confidence, 0.9);
    EXPECT_GE(rule.support, 10u);
  }
}

TEST(HaWatcher, BackgroundKnowledgeRejectsCrossRoom) {
  const telemetry::DeviceCatalog catalog = two_room_catalog();
  HaWatcherConfig gated;
  gated.min_support = 10;
  HaWatcherDetector with_gate(catalog, gated);
  with_gate.fit(presence_lamp_series(60));

  HaWatcherConfig open = gated;
  open.use_background_knowledge = false;
  HaWatcherDetector without_gate(catalog, open);
  without_gate.fit(presence_lamp_series(60));

  EXPECT_GT(with_gate.rejected_by_background_knowledge(), 0u);
  EXPECT_GT(without_gate.rules().size(), with_gate.rules().size());
  EXPECT_EQ(without_gate.rejected_by_background_knowledge(), 0u);
}

TEST(HaWatcher, FlagsRuleViolation) {
  const telemetry::DeviceCatalog catalog = two_room_catalog();
  HaWatcherConfig config;
  config.min_support = 10;
  HaWatcherDetector detector(catalog, config);
  detector.fit(presence_lamp_series(60));
  ASSERT_FALSE(detector.rules().empty());

  detector.reset({0, 0, 0});
  // Normal pattern: presence on, then lamp on — no violations.
  EXPECT_FALSE(detector.is_anomalous({0, 1, 0.0}));
  EXPECT_FALSE(detector.is_anomalous({1, 1, 0.0}));
  // Lamp turning on while presence is OFF violates the mined correlation
  // (lamp-on events always had presence on).
  detector.reset({0, 0, 0});
  EXPECT_TRUE(detector.is_anomalous({1, 1, 0.0}));
}

}  // namespace
}  // namespace causaliot::baselines
