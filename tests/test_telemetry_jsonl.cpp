#include "causaliot/telemetry/jsonl.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace causaliot::telemetry {
namespace {

DeviceCatalog catalog_ab() {
  DeviceCatalog catalog;
  EXPECT_TRUE(catalog
                  .add({"pe_kitchen", "kitchen",
                        AttributeType::kPresenceSensor, ValueType::kBinary})
                  .ok());
  EXPECT_TRUE(catalog
                  .add({"bright", "kitchen",
                        AttributeType::kBrightnessSensor,
                        ValueType::kAmbientNumeric})
                  .ok());
  return catalog;
}

TEST(Jsonl, ParsesCanonicalLine) {
  const auto event = parse_jsonl_event(
      R"({"timestamp": 12.5, "device": "pe_kitchen", "value": 1})",
      catalog_ab());
  ASSERT_TRUE(event.ok());
  EXPECT_DOUBLE_EQ(event->timestamp, 12.5);
  EXPECT_EQ(event->device, 0u);
  EXPECT_DOUBLE_EQ(event->value, 1.0);
}

TEST(Jsonl, FieldOrderAndExtrasAreIrrelevant) {
  const auto event = parse_jsonl_event(
      R"({"value": 83.25, "source": "mqtt", "device": "bright", )"
      R"("timestamp": 7})",
      catalog_ab());
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->device, 1u);
  EXPECT_DOUBLE_EQ(event->value, 83.25);
}

TEST(Jsonl, EscapedStringsParse) {
  DeviceCatalog catalog;
  ASSERT_TRUE(catalog
                  .add({"weird \"name\"", "x", AttributeType::kSwitch,
                        ValueType::kBinary})
                  .ok());
  const auto event = parse_jsonl_event(
      R"({"timestamp": 1, "device": "weird \"name\"", "value": 0})",
      catalog);
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->device, 0u);
}

TEST(Jsonl, NegativeAndScientificNumbers) {
  const auto event = parse_jsonl_event(
      R"({"timestamp": 1e3, "device": "bright", "value": -2.5})",
      catalog_ab());
  ASSERT_TRUE(event.ok());
  EXPECT_DOUBLE_EQ(event->timestamp, 1000.0);
  EXPECT_DOUBLE_EQ(event->value, -2.5);
}

TEST(Jsonl, RejectsMalformedLines) {
  const DeviceCatalog catalog = catalog_ab();
  for (const char* bad : {
           "not json",
           R"({"timestamp": 1, "device": "pe_kitchen")",       // no close
           R"({"timestamp": 1, "device": "pe_kitchen"} junk)",  // trailing
           R"({"timestamp": 1, "value": 0})",                   // no device
           R"({"device": "pe_kitchen", "value": 0})",           // no ts
           R"({"timestamp": 1, "device": "ghost", "value": 0})",  // unknown
           R"({"timestamp": "1", "device": "pe_kitchen", "value": 0})",
       }) {
    EXPECT_FALSE(parse_jsonl_event(bad, catalog).ok()) << bad;
  }
}

TEST(Jsonl, FormatParsesBack) {
  const DeviceCatalog catalog = catalog_ab();
  const DeviceEvent original{42.125, 1, 73.5};
  const auto back =
      parse_jsonl_event(format_jsonl_event(original, catalog), catalog);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->device, original.device);
  EXPECT_DOUBLE_EQ(back->value, original.value);
  EXPECT_NEAR(back->timestamp, original.timestamp, 1e-3);
}

class JsonlFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() / "causaliot_trace.jsonl";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(JsonlFileTest, SaveLoadRoundTrip) {
  EventLog log(catalog_ab());
  log.append({1.0, 0, 1.0});
  log.append({2.5, 1, 80.0});
  log.append({3.0, 0, 0.0});
  ASSERT_TRUE(save_jsonl(log, path_.string()).ok());
  const auto loaded = load_jsonl(path_.string(), catalog_ab());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->events()[1].device, 1u);
  EXPECT_DOUBLE_EQ(loaded->events()[1].value, 80.0);
}

TEST_F(JsonlFileTest, BlankLinesSkippedErrorsCarryLineNumber) {
  std::ofstream out(path_);
  out << R"({"timestamp": 1, "device": "pe_kitchen", "value": 1})" << "\n";
  out << "\n";
  out << "garbage\n";
  out.close();
  const auto loaded = load_jsonl(path_.string(), catalog_ab());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().message.find("line 3"), std::string::npos);
}

TEST(Jsonl, MissingFileIsIoError) {
  EXPECT_FALSE(load_jsonl("/no/such/file.jsonl", catalog_ab()).ok());
}

}  // namespace
}  // namespace causaliot::telemetry
