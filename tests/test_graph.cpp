#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "causaliot/graph/cpt.hpp"
#include "causaliot/graph/dig.hpp"

namespace causaliot::graph {
namespace {

TEST(LaggedNode, CanonicalOrdering) {
  const LaggedNode a{3, 1};
  const LaggedNode b{1, 2};
  const LaggedNode c{2, 2};
  EXPECT_LT(a, b);  // smaller lag first
  EXPECT_LT(b, c);  // then smaller device
  EXPECT_EQ(a, (LaggedNode{3, 1}));
}

TEST(Cpt, PackFollowsCauseOrder) {
  const Cpt cpt({{0, 1}, {2, 1}, {1, 2}});
  const util::BitKey key = cpt.pack({1, 0, 1});
  EXPECT_TRUE(key.get(0));
  EXPECT_FALSE(key.get(1));
  EXPECT_TRUE(key.get(2));
}

TEST(Cpt, MaximumLikelihoodEstimates) {
  Cpt cpt({{0, 1}});
  const util::BitKey on = cpt.pack({1});
  // 80 observations of child=1, 20 of child=0 under cause=1.
  for (int i = 0; i < 80; ++i) cpt.observe(on, 1);
  for (int i = 0; i < 20; ++i) cpt.observe(on, 0);
  EXPECT_DOUBLE_EQ(cpt.probability(on, 1), 0.8);
  EXPECT_DOUBLE_EQ(cpt.probability(on, 0), 0.2);
  EXPECT_DOUBLE_EQ(cpt.support(on), 100.0);
}

TEST(Cpt, UnseenAssignmentIsZeroUnderMle) {
  Cpt cpt({{0, 1}});
  EXPECT_DOUBLE_EQ(cpt.probability(cpt.pack({1}), 1), 0.0);
  EXPECT_DOUBLE_EQ(cpt.support(cpt.pack({1})), 0.0);
}

TEST(Cpt, LaplaceSmoothing) {
  Cpt cpt({{0, 1}});
  const util::BitKey key = cpt.pack({0});
  // Unseen assignment with alpha: uniform 0.5.
  EXPECT_DOUBLE_EQ(cpt.probability(key, 1, 1.0), 0.5);
  // One observation: (1 + 1) / (1 + 2).
  cpt.observe(key, 1);
  EXPECT_NEAR(cpt.probability(key, 1, 1.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cpt.probability(key, 0, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(Cpt, EmptyCauseSetIsMarginal) {
  Cpt cpt(std::vector<LaggedNode>{});
  const util::BitKey key = cpt.pack({});
  cpt.observe(key, 1);
  cpt.observe(key, 1);
  cpt.observe(key, 0);
  EXPECT_NEAR(cpt.probability(key, 1), 2.0 / 3.0, 1e-12);
}

TEST(Cpt, SetCountsRestoresState) {
  Cpt cpt({{0, 1}});
  cpt.set_counts(1, 3.0, 7.0);
  EXPECT_DOUBLE_EQ(cpt.probability(util::BitKey::from_raw(1), 1), 0.7);
  EXPECT_EQ(cpt.assignment_count(), 1u);
}

InteractionGraph demo_graph() {
  InteractionGraph graph(4, 2);
  graph.set_causes(2, {{0, 1}, {1, 2}, {2, 1}});  // autocorr + two causes
  graph.set_causes(3, {{2, 1}});
  return graph;
}

TEST(InteractionGraph, EdgeQueries) {
  const InteractionGraph graph = demo_graph();
  EXPECT_EQ(graph.edge_count(), 4u);
  EXPECT_TRUE(graph.has_edge(0, 1, 2));
  EXPECT_TRUE(graph.has_edge(1, 2, 2));
  EXPECT_FALSE(graph.has_edge(1, 1, 2));
  EXPECT_TRUE(graph.has_interaction(1, 2));
  EXPECT_FALSE(graph.has_interaction(3, 2));
  EXPECT_TRUE(graph.has_interaction(2, 2));  // self loop via lag
}

TEST(InteractionGraph, ChildrenFanOut) {
  const InteractionGraph graph = demo_graph();
  EXPECT_EQ(graph.children(2), (std::vector<telemetry::DeviceId>{2, 3}));
  EXPECT_EQ(graph.children(0), (std::vector<telemetry::DeviceId>{2}));
  EXPECT_TRUE(graph.children(3).empty());
}

TEST(InteractionGraph, SetCausesCanonicalizesOrder) {
  InteractionGraph graph(3, 2);
  graph.set_causes(0, {{2, 2}, {1, 1}});
  EXPECT_EQ(graph.causes(0)[0], (LaggedNode{1, 1}));
  EXPECT_EQ(graph.causes(0)[1], (LaggedNode{2, 2}));
}

TEST(InteractionGraph, DotOutputNamesDevices) {
  telemetry::DeviceCatalog catalog;
  for (const char* name : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(catalog
                    .add({name, "room", telemetry::AttributeType::kSwitch,
                          telemetry::ValueType::kBinary})
                    .ok());
  }
  const std::string dot = demo_graph().to_dot(catalog);
  EXPECT_NE(dot.find("digraph DIG"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("d0 -> d2"), std::string::npos);
  EXPECT_NE(dot.find("lag 2"), std::string::npos);
}

class GraphFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() / "causaliot_dig.txt";
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(GraphFileTest, SaveLoadRoundTrip) {
  InteractionGraph graph = demo_graph();
  graph.cpt(2).observe(graph.cpt(2).pack({1, 0, 1}), 1);
  graph.cpt(2).observe(graph.cpt(2).pack({1, 0, 1}), 1);
  graph.cpt(2).observe(graph.cpt(2).pack({0, 0, 0}), 0);
  ASSERT_TRUE(graph.save(path_.string()).ok());

  const auto loaded = InteractionGraph::load(path_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().device_count(), 4u);
  EXPECT_EQ(loaded.value().max_lag(), 2u);
  EXPECT_EQ(loaded.value().causes(2), graph.causes(2));
  const util::BitKey key = graph.cpt(2).pack({1, 0, 1});
  EXPECT_DOUBLE_EQ(loaded.value().cpt(2).probability(key, 1),
                   graph.cpt(2).probability(key, 1));
  EXPECT_DOUBLE_EQ(loaded.value().cpt(2).support(key), 2.0);
}

TEST_F(GraphFileTest, LoadRejectsCorruptHeader) {
  std::ofstream(path_) << "not a dig file\n";
  EXPECT_FALSE(InteractionGraph::load(path_.string()).ok());
}

TEST(InteractionGraph, LoadMissingFileFails) {
  EXPECT_FALSE(InteractionGraph::load("/no/such/file.dig").ok());
}

}  // namespace
}  // namespace causaliot::graph
