// Tests for the extension features beyond the paper's core algorithms:
// PC-stable mining, online CPT adaptation (exponential forgetting), and
// human-readable anomaly explanations.
#include <gtest/gtest.h>

#include "causaliot/detect/explanation.hpp"
#include "causaliot/mining/temporal_pc.hpp"
#include "causaliot/util/rng.hpp"

namespace causaliot {
namespace {

using preprocess::BinaryEvent;
using preprocess::StateSeries;

StateSeries noisy_copy_series(std::size_t cycles, double flip,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  StateSeries series(3, {0, 0, 0});
  double t = 0.0;
  for (std::size_t i = 0; i < cycles; ++i) {
    const auto driver = static_cast<std::uint8_t>(rng.uniform(2));
    series.apply({0, driver, t += 1});
    series.apply({1,
                  rng.bernoulli(flip)
                      ? static_cast<std::uint8_t>(1 - driver)
                      : driver,
                  t += 1});
    series.apply({2, static_cast<std::uint8_t>(rng.uniform(2)), t += 1});
  }
  return series;
}

TEST(PcStable, FindsSameCoreStructure) {
  const StateSeries series = noisy_copy_series(1500, 0.1, 1);
  mining::MinerConfig ordered;
  ordered.max_lag = 2;
  mining::MinerConfig stable = ordered;
  stable.stable = true;
  const graph::InteractionGraph a =
      mining::InteractionMiner(ordered).mine(series);
  const graph::InteractionGraph b =
      mining::InteractionMiner(stable).mine(series);
  EXPECT_TRUE(a.has_interaction(0, 1));
  EXPECT_TRUE(b.has_interaction(0, 1));
  // Device 2 is independent noise in both variants.
  EXPECT_FALSE(a.has_interaction(0, 2));
  EXPECT_FALSE(b.has_interaction(0, 2));
}

TEST(PcStable, RemovalsAreLevelConsistent) {
  const StateSeries series = noisy_copy_series(800, 0.1, 2);
  mining::MinerConfig config;
  config.max_lag = 2;
  config.stable = true;
  mining::MiningDiagnostics diagnostics;
  mining::InteractionMiner(config).mine(series, &diagnostics);
  EXPECT_GT(diagnostics.tests_run, 0u);
  // Separating sets at level l have exactly size l.
  for (const mining::RemovalRecord& record : diagnostics.removals) {
    EXPECT_EQ(record.separating_set.size(), record.condition_size);
  }
}

TEST(CptScale, ShrinksSupportKeepsDistribution) {
  graph::Cpt cpt({{0, 1}});
  const util::BitKey key = cpt.pack({1});
  for (int i = 0; i < 80; ++i) cpt.observe(key, 1);
  for (int i = 0; i < 20; ++i) cpt.observe(key, 0);
  cpt.scale(0.5);
  EXPECT_DOUBLE_EQ(cpt.support(key), 50.0);
  EXPECT_DOUBLE_EQ(cpt.probability(key, 1), 0.8);  // ratios preserved
}

TEST(UpdateCpts, AdaptsToBehaviouralDrift) {
  // Train on copy behaviour, then the user's habit inverts: device 1
  // now mirrors the *opposite* of device 0. Online updates with
  // forgetting shift the CPT toward the new behaviour.
  const StateSeries original = noisy_copy_series(800, 0.05, 3);
  mining::MinerConfig config;
  config.max_lag = 2;
  const mining::InteractionMiner miner(config);
  graph::InteractionGraph graph = miner.mine(original);
  ASSERT_TRUE(graph.has_interaction(0, 1));

  // Inverted behaviour series.
  const StateSeries inverted = noisy_copy_series(800, 0.95, 4);
  for (int round = 0; round < 6; ++round) {
    miner.update_cpts(inverted, graph, /*forget_factor=*/0.3);
  }

  // Under the adapted CPT, device 1 copying device 0 should now be the
  // UNLIKELY outcome. Find an assignment where the lag-1 driver bit is 1.
  const graph::Cpt& cpt = graph.cpt(1);
  bool checked = false;
  for (const auto& [raw, counts] : cpt.counts()) {
    if (counts[0] + counts[1] < 50) continue;
    const util::BitKey key = util::BitKey::from_raw(raw);
    // Locate the driver (device 0) among the causes.
    for (std::size_t c = 0; c < cpt.causes().size(); ++c) {
      if (cpt.causes()[c].device == 0 && cpt.causes()[c].lag == 1) {
        const std::uint8_t driver = key.get(c) ? 1 : 0;
        const double p_copy = cpt.probability(key, driver);
        EXPECT_LT(p_copy, 0.5);
        checked = true;
      }
    }
  }
  EXPECT_TRUE(checked);
}

telemetry::DeviceCatalog explain_catalog() {
  telemetry::DeviceCatalog catalog;
  EXPECT_TRUE(catalog
                  .add({"pe_bedroom", "bedroom",
                        telemetry::AttributeType::kPresenceSensor,
                        telemetry::ValueType::kBinary})
                  .ok());
  EXPECT_TRUE(catalog
                  .add({"lamp", "bedroom", telemetry::AttributeType::kSwitch,
                        telemetry::ValueType::kBinary})
                  .ok());
  return catalog;
}

TEST(Explanation, StateLabelsFollowAttributeClass) {
  const telemetry::DeviceCatalog catalog = explain_catalog();
  EXPECT_EQ(detect::state_label(catalog.info(0), 1), "motion");
  EXPECT_EQ(detect::state_label(catalog.info(0), 0), "clear");
  EXPECT_EQ(detect::state_label(catalog.info(1), 1), "ON");
  telemetry::DeviceInfo bright{"b", "x",
                               telemetry::AttributeType::kBrightnessSensor,
                               telemetry::ValueType::kAmbientNumeric};
  EXPECT_EQ(detect::state_label(bright, 1), "High");
  telemetry::DeviceInfo meter{"m", "x",
                              telemetry::AttributeType::kWaterMeter,
                              telemetry::ValueType::kResponsiveNumeric};
  EXPECT_EQ(detect::state_label(meter, 0), "idle");
}

detect::AnomalyReport ghost_lamp_report() {
  detect::AnomalyEntry head;
  head.event = {1, 1, 42.0};
  head.stream_index = 7;
  head.score = 0.998;
  head.causes = {{0, 1}};
  head.cause_values = {0};  // no presence
  detect::AnomalyReport report;
  report.entries.push_back(head);
  return report;
}

TEST(Explanation, EntryMentionsEventAndContext) {
  const telemetry::DeviceCatalog catalog = explain_catalog();
  const std::string text =
      detect::describe_entry(ghost_lamp_report().contextual(), catalog);
  EXPECT_NE(text.find("lamp -> ON"), std::string::npos);
  EXPECT_NE(text.find("0.998"), std::string::npos);
  EXPECT_NE(text.find("pe_bedroom(t-1)=clear"), std::string::npos);
}

TEST(Explanation, ReportPointsAtMismatchedCauses) {
  const telemetry::DeviceCatalog catalog = explain_catalog();
  const std::string text =
      detect::describe_report(ghost_lamp_report(), catalog);
  EXPECT_NE(text.find("contextual anomaly"), std::string::npos);
  EXPECT_NE(text.find("context mismatch with: pe_bedroom"),
            std::string::npos);
}

TEST(Explanation, ChainIsRendered) {
  const telemetry::DeviceCatalog catalog = explain_catalog();
  detect::AnomalyReport report = ghost_lamp_report();
  detect::AnomalyEntry follower;
  follower.event = {0, 1, 43.0};
  follower.score = 0.02;
  report.entries.push_back(follower);
  const std::string text = detect::describe_report(report, catalog);
  EXPECT_NE(text.find("triggered interaction chain (1 events)"),
            std::string::npos);
  EXPECT_NE(text.find("pe_bedroom -> motion"), std::string::npos);
}

TEST(Explanation, AgreementHintWhenCausesMatch) {
  const telemetry::DeviceCatalog catalog = explain_catalog();
  detect::AnomalyReport report = ghost_lamp_report();
  report.entries[0].cause_values = {1};  // presence agrees with lamp-on
  const std::string text = detect::describe_report(report, catalog);
  EXPECT_NE(text.find("transition itself is rare"), std::string::npos);
}

}  // namespace
}  // namespace causaliot
