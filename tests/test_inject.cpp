#include "causaliot/inject/injector.hpp"

#include <gtest/gtest.h>

#include <map>

#include "causaliot/core/experiment.hpp"
#include "causaliot/sim/simulator.hpp"

namespace causaliot::inject {
namespace {

// A fixture that builds one small ContextAct experiment shared by all
// injection tests (simulation + preprocessing is the expensive part).
class InjectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::HomeProfile profile = sim::contextact_profile();
    profile.days = 6.0;
    core::ExperimentConfig config;
    config.seed = 77;
    experiment_ = new core::Experiment(
        core::build_experiment(std::move(profile), config));
    injector_ = new AnomalyInjector(experiment_->catalog(),
                                    experiment_->profile,
                                    experiment_->sim.ground_truth);
  }
  static void TearDownTestSuite() {
    delete injector_;
    delete experiment_;
    injector_ = nullptr;
    experiment_ = nullptr;
  }

  const core::Experiment& experiment() { return *experiment_; }
  const AnomalyInjector& injector() { return *injector_; }
  std::span<const preprocess::BinaryEvent> base() {
    return experiment_->test_series.events();
  }
  std::vector<std::uint8_t> initial() {
    return experiment_->test_series.snapshot_state(0);
  }

  static core::Experiment* experiment_;
  static AnomalyInjector* injector_;
};

core::Experiment* InjectorTest::experiment_ = nullptr;
AnomalyInjector* InjectorTest::injector_ = nullptr;

TEST_F(InjectorTest, ContextualPreservesBaseEvents) {
  ContextualConfig config;
  config.anomaly_case = ContextualCase::kRemoteControl;
  config.injection_count = 50;
  const InjectionResult result =
      injector().inject_contextual(base(), initial(), config);
  EXPECT_EQ(result.events.size(), result.chain_id.size());
  // Removing labelled events recovers the base stream exactly.
  std::vector<preprocess::BinaryEvent> benign;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    if (!result.is_injected(i)) benign.push_back(result.events[i]);
  }
  // Sensor resets (none for remote control) would add events; here the
  // benign remainder is the base stream.
  ASSERT_EQ(benign.size(), base().size());
  for (std::size_t i = 0; i < benign.size(); ++i) {
    EXPECT_EQ(benign[i], base()[i]);
  }
}

TEST_F(InjectorTest, ContextualInjectionCountsAndLabels) {
  ContextualConfig config;
  config.anomaly_case = ContextualCase::kRemoteControl;
  config.injection_count = 100;
  const InjectionResult result =
      injector().inject_contextual(base(), initial(), config);
  EXPECT_EQ(result.injected_count, 100u);
  EXPECT_EQ(result.chain_count, 100u);
  EXPECT_EQ(result.chain_lengths.size(), 100u);
  std::size_t labelled = 0;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    labelled += result.is_injected(i);
  }
  EXPECT_EQ(labelled, 100u);
}

TEST_F(InjectorTest, RemoteControlTargetsSwitchesAndDimmers) {
  ContextualConfig config;
  config.anomaly_case = ContextualCase::kRemoteControl;
  config.injection_count = 200;
  const InjectionResult result =
      injector().inject_contextual(base(), initial(), config);
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    if (!result.is_injected(i)) continue;
    const auto type =
        experiment().catalog().info(result.events[i].device).attribute;
    EXPECT_TRUE(type == telemetry::AttributeType::kSwitch ||
                type == telemetry::AttributeType::kDimmer);
  }
}

TEST_F(InjectorTest, BurglarInjectsOnlyOnEvents) {
  ContextualConfig config;
  config.anomaly_case = ContextualCase::kBurglarIntrusion;
  config.injection_count = 200;
  const InjectionResult result =
      injector().inject_contextual(base(), initial(), config);
  EXPECT_GT(result.injected_count, 0u);
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    if (!result.is_injected(i)) continue;
    EXPECT_EQ(result.events[i].state, 1);
    const auto type =
        experiment().catalog().info(result.events[i].device).attribute;
    EXPECT_TRUE(type == telemetry::AttributeType::kPresenceSensor ||
                type == telemetry::AttributeType::kContactSensor);
  }
}

TEST_F(InjectorTest, SensorGhostsAreFollowedByBenignResets) {
  ContextualConfig config;
  config.anomaly_case = ContextualCase::kBurglarIntrusion;
  config.injection_count = 50;
  const InjectionResult result =
      injector().inject_contextual(base(), initial(), config);
  // Resets add benign events, so the stream is longer than base+injected.
  EXPECT_GT(result.events.size(), base().size() + result.injected_count);
}

TEST_F(InjectorTest, InjectedEventsAreStateTransitions) {
  for (ContextualCase anomaly_case :
       {ContextualCase::kSensorFault, ContextualCase::kBurglarIntrusion,
        ContextualCase::kRemoteControl}) {
    ContextualConfig config;
    config.anomaly_case = anomaly_case;
    config.injection_count = 100;
    const InjectionResult result =
        injector().inject_contextual(base(), initial(), config);
    std::vector<std::uint8_t> state = result.initial_state;
    for (std::size_t i = 0; i < result.events.size(); ++i) {
      if (result.is_injected(i)) {
        EXPECT_NE(state[result.events[i].device], result.events[i].state)
            << "case " << to_string(anomaly_case) << " at " << i;
      }
      state[result.events[i].device] = result.events[i].state;
    }
  }
}

TEST_F(InjectorTest, MaliciousRulesRespectCapAndActuators) {
  ContextualConfig config;
  config.anomaly_case = ContextualCase::kMaliciousRule;
  config.malicious_event_cap = 40;
  const InjectionResult result =
      injector().inject_contextual(base(), initial(), config);
  EXPECT_LE(result.injected_count, 40u);
  EXPECT_GT(result.injected_count, 0u);
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    if (!result.is_injected(i)) continue;
    EXPECT_TRUE(telemetry::is_actuator(
        experiment().catalog().info(result.events[i].device).attribute));
  }
}

TEST_F(InjectorTest, DeterministicGivenSeed) {
  ContextualConfig config;
  config.anomaly_case = ContextualCase::kSensorFault;
  config.injection_count = 60;
  config.seed = 5;
  const InjectionResult a =
      injector().inject_contextual(base(), initial(), config);
  const InjectionResult b =
      injector().inject_contextual(base(), initial(), config);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.chain_id, b.chain_id);
}

TEST_F(InjectorTest, CollectiveChainLengthsBounded) {
  for (std::size_t k_max : {2, 3, 4}) {
    CollectiveConfig config;
    config.anomaly_case = CollectiveCase::kBurglarWandering;
    config.chain_count = 100;
    config.k_max = k_max;
    const InjectionResult result =
        injector().inject_collective(base(), initial(), config);
    EXPECT_GT(result.chain_count, 0u);
    for (std::size_t length : result.chain_lengths) {
      EXPECT_GE(length, 2u);
      EXPECT_LE(length, k_max);
    }
  }
}

TEST_F(InjectorTest, CollectiveChainsAreContiguousAndLabelled) {
  CollectiveConfig config;
  config.anomaly_case = CollectiveCase::kActuatorManipulation;
  config.chain_count = 50;
  config.k_max = 3;
  const InjectionResult result =
      injector().inject_collective(base(), initial(), config);
  // Events of one chain appear consecutively in the stream.
  std::int32_t current = -1;
  std::map<std::int32_t, std::size_t> seen;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const std::int32_t id = result.chain_id[i];
    if (id >= 0) {
      if (id != current) {
        EXPECT_EQ(seen.count(id), 0u) << "chain split apart";
        current = id;
      }
      ++seen[id];
    } else {
      current = -1;
    }
  }
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, result.chain_lengths[static_cast<std::size_t>(id)]);
  }
}

TEST_F(InjectorTest, WanderingChainsFollowGroundTruth) {
  CollectiveConfig config;
  config.anomaly_case = CollectiveCase::kBurglarWandering;
  config.chain_count = 60;
  config.k_max = 4;
  const InjectionResult result =
      injector().inject_collective(base(), initial(), config);
  // Followers are presence/contact events or off-resets of the head.
  for (std::size_t i = 0; i + 1 < result.events.size(); ++i) {
    if (result.chain_id[i] < 0 || result.chain_id[i + 1] < 0) continue;
    if (result.chain_id[i] != result.chain_id[i + 1]) continue;
    const auto& next = result.events[i + 1];
    const auto type = experiment().catalog().info(next.device).attribute;
    EXPECT_TRUE(type == telemetry::AttributeType::kPresenceSensor ||
                type == telemetry::AttributeType::kContactSensor);
  }
}

TEST_F(InjectorTest, ChainedAutomationFollowsRulesOrPhysical) {
  CollectiveConfig config;
  config.anomaly_case = CollectiveCase::kChainedAutomation;
  config.chain_count = 60;
  config.k_max = 4;
  const InjectionResult result =
      injector().inject_collective(base(), initial(), config);
  EXPECT_GT(result.chain_count, 0u);
  // At least some chains should exceed the trivial length 2 thanks to the
  // attacker's look-ahead head selection.
  std::size_t longer = 0;
  for (std::size_t length : result.chain_lengths) longer += length >= 3;
  EXPECT_GT(longer, 0u);
}

}  // namespace
}  // namespace causaliot::inject
