#include "causaliot/util/result.hpp"

#include <gtest/gtest.h>

#include "causaliot/util/bitkey.hpp"

namespace causaliot::util {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Error::not_found("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
}

TEST(Result, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> bad(Error::internal("x"));
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(bad.value_or(0), 0);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  Status s(Error::io_error("disk"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kIoError);
}

TEST(Error, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Error::parse_error("bad line").to_string(),
            "parse_error: bad line");
}

TEST(ErrorCode, AllCodesHaveNames) {
  for (ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kParseError, ErrorCode::kIoError, ErrorCode::kOutOfRange,
        ErrorCode::kFailedPrecondition, ErrorCode::kInternal}) {
    EXPECT_STRNE(to_string(code), "unknown");
  }
}

TEST(BitKey, SetAndGet) {
  BitKey key;
  key.set(0, true);
  key.set(5, true);
  key.set(63, true);
  EXPECT_TRUE(key.get(0));
  EXPECT_FALSE(key.get(1));
  EXPECT_TRUE(key.get(5));
  EXPECT_TRUE(key.get(63));
}

TEST(BitKey, ClearBit) {
  BitKey key;
  key.set(3, true);
  key.set(3, false);
  EXPECT_FALSE(key.get(3));
  EXPECT_EQ(key.raw(), 0u);
}

TEST(BitKey, RawRoundTrip) {
  BitKey key;
  key.set(1, true);
  key.set(4, true);
  EXPECT_EQ(key.raw(), 0b10010u);
  EXPECT_EQ(BitKey::from_raw(0b10010u), key);
}

TEST(BitKey, EqualityIsValueBased) {
  BitKey a;
  BitKey b;
  a.set(2, true);
  EXPECT_NE(a, b);
  b.set(2, true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace causaliot::util
