// AlertEngine semantics, driven deterministically: rules-file parsing
// (including every rejection path), the exact pending -> firing ->
// resolved transition sequence under for_duration hysteresis, rate and
// absence rules, label-subset targeting, the exported transition /
// state metrics, and the /alertz JSON + text payloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "causaliot/obs/alert.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/obs/time_series.hpp"

namespace causaliot::obs {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

TimeSeriesConfig manual_config() {
  TimeSeriesConfig config;
  config.interval_ms = 0;  // tests drive sample_at() directly
  config.raw_capacity = 64;
  config.agg_capacity = 64;
  config.downsample_every = 8;
  return config;
}

// --- rules-file parsing ---

TEST(ObsAlertRules, ParsesEveryKindWithCommentsAndBlanks) {
  const auto rules = parse_alert_rules(
      "# ops ruleset\n"
      "\n"
      "{\"name\": \"queue_sat\", \"metric\": \"serve_queue_depth\", "
      "\"labels\": \"shard=0\", \"kind\": \"threshold\", \"op\": \">=\", "
      "\"value\": 48, \"for_seconds\": 5}\n"
      "{\"name\": \"reject_spike\", \"metric\": \"rejected_total\", "
      "\"kind\": \"rate\", \"op\": \">\", \"value\": 5, "
      "\"window_seconds\": 10, \"for_seconds\": 2}\n"
      "{\"name\": \"gone\", \"metric\": \"heartbeat\", "
      "\"kind\": \"absence\", \"stale_seconds\": 10}\n");
  ASSERT_TRUE(rules.ok()) << rules.error().to_string();
  ASSERT_EQ(rules->size(), 3u);

  const AlertRule& threshold = (*rules)[0];
  EXPECT_EQ(threshold.name, "queue_sat");
  EXPECT_EQ(threshold.metric, "serve_queue_depth");
  ASSERT_EQ(threshold.labels.size(), 1u);
  EXPECT_EQ(threshold.labels[0].first, "shard");
  EXPECT_EQ(threshold.labels[0].second, "0");
  EXPECT_EQ(threshold.kind, AlertKind::kThreshold);
  EXPECT_EQ(threshold.op, AlertOp::kGe);
  EXPECT_DOUBLE_EQ(threshold.value, 48.0);
  EXPECT_DOUBLE_EQ(threshold.for_seconds, 5.0);

  EXPECT_EQ((*rules)[1].kind, AlertKind::kRate);
  EXPECT_DOUBLE_EQ((*rules)[1].window_seconds, 10.0);
  EXPECT_EQ((*rules)[2].kind, AlertKind::kAbsence);
  EXPECT_DOUBLE_EQ((*rules)[2].stale_seconds, 10.0);
}

TEST(ObsAlertRules, RejectsMalformedRulesWithLineNumbers) {
  const auto check = [](std::string_view text, std::string_view needle) {
    const auto rules = parse_alert_rules(text);
    ASSERT_FALSE(rules.ok()) << "expected rejection: " << text;
    EXPECT_NE(rules.error().to_string().find(needle), std::string::npos)
        << rules.error().to_string();
  };
  check("not json\n", "line 1");
  check("{\"metric\": \"m\", \"value\": 1}\n", "\"name\" is required");
  check("{\"name\": \"r\", \"value\": 1}\n", "\"metric\" is required");
  check("{\"name\": \"r\", \"metric\": \"m\"}\n",
        "threshold rules require \"value\"");
  check("{\"name\": \"r\", \"metric\": \"m\", \"kind\": \"rate\", "
        "\"value\": 1}\n",
        "\"window_seconds\" > 0");
  check("{\"name\": \"r\", \"metric\": \"m\", \"kind\": \"absence\"}\n",
        "\"stale_seconds\" > 0");
  check("{\"name\": \"r\", \"metric\": \"m\", \"op\": \"!=\", "
        "\"value\": 1}\n",
        "\"op\" must be");
  check("{\"name\": \"r\", \"metric\": \"m\", \"kind\": \"sigma\", "
        "\"value\": 1}\n",
        "\"kind\" must be");
  check("{\"name\": \"r\", \"metric\": \"m\", \"value\": 1, "
        "\"bogus\": 2}\n",
        "unknown key \"bogus\"");
  check("{\"name\": \"r\", \"metric\": \"m\", \"labels\": \"oops\", "
        "\"value\": 1}\n",
        "k=v");
  check("{\"name\": \"r\", \"metric\": \"m\", \"value\": 1}\n"
        "{\"name\": \"r\", \"metric\": \"m\", \"value\": 2}\n",
        "line 2: duplicate rule name");
}

// --- the state machine, tick by tick ---

AlertRule threshold_rule(std::string name, std::string metric, double value,
                         double for_seconds) {
  AlertRule rule;
  rule.name = std::move(name);
  rule.metric = std::move(metric);
  rule.kind = AlertKind::kThreshold;
  rule.op = AlertOp::kGt;
  rule.value = value;
  rule.for_seconds = for_seconds;
  return rule;
}

TEST(ObsAlert, ThresholdWithHysteresisWalksTheExactTransitionSequence) {
  Registry registry;
  Gauge& gauge = registry.gauge("m");
  TimeSeriesStore store(registry, manual_config());
  AlertEngine engine(store, registry,
                     {threshold_rule("hot", "m", 10.0, 2.0)});

  std::vector<AlertState> states;
  const auto tick = [&](std::uint64_t t_s, std::int64_t value) {
    gauge.set(value);
    store.sample_at(t_s * kSecond);
    engine.evaluate(t_s * kSecond);
    states.push_back(engine.status()[0].state);
  };

  tick(1, 5);   // healthy            -> inactive
  tick(2, 15);  // first bad tick     -> pending (for 2s)
  tick(3, 15);  // 1s elapsed         -> still pending
  tick(4, 15);  // 2s elapsed         -> firing
  tick(5, 15);  // still bad          -> still firing
  tick(6, 5);   // recovered          -> resolved
  tick(7, 15);  // bad again          -> pending (hysteresis restarts)
  tick(8, 5);   // cleared early      -> inactive, never fired
  EXPECT_EQ(states,
            (std::vector<AlertState>{
                AlertState::kInactive, AlertState::kPending,
                AlertState::kPending, AlertState::kFiring,
                AlertState::kFiring, AlertState::kResolved,
                AlertState::kPending, AlertState::kInactive}));

  // Every transition is metered, by destination state.
  const auto transitions = [&](const char* to) {
    return registry
        .counter("obs_alert_transitions_total",
                 {{"rule", "hot"}, {"to", to}})
        .value();
  };
  EXPECT_EQ(transitions("pending"), 2u);
  EXPECT_EQ(transitions("firing"), 1u);
  EXPECT_EQ(transitions("resolved"), 1u);
  EXPECT_EQ(transitions("inactive"), 1u);
  EXPECT_EQ(registry.gauge("obs_alert_state", {{"rule", "hot"}}).value(),
            static_cast<std::int64_t>(AlertState::kInactive));
  EXPECT_EQ(registry.gauge("obs_alerts_firing").value(), 0);
  EXPECT_EQ(registry.counter("obs_alert_evaluations_total").value(), 8u);

  const AlertEngine::RuleStatus status = engine.status()[0];
  EXPECT_EQ(status.transitions, 5u);
  EXPECT_DOUBLE_EQ(status.last_value, 5.0);
  EXPECT_EQ(status.series, "m");
}

TEST(ObsAlert, ZeroForSecondsFiresOnTheFirstBadTick) {
  Registry registry;
  Gauge& gauge = registry.gauge("m");
  TimeSeriesStore store(registry, manual_config());
  AlertEngine engine(store, registry,
                     {threshold_rule("hot", "m", 10.0, 0.0)});

  gauge.set(99);
  store.sample_at(kSecond);
  engine.evaluate(kSecond);
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.firing_count(), 1u);
  EXPECT_EQ(registry.gauge("obs_alerts_firing").value(), 1);
}

TEST(ObsAlert, LabelSubsetTargetsOneInstanceAndNamesTheOffender) {
  Registry registry;
  Gauge& shard0 = registry.gauge("depth", {{"shard", "0"}});
  Gauge& shard1 = registry.gauge("depth", {{"shard", "1"}});
  TimeSeriesStore store(registry, manual_config());

  AlertRule rule = threshold_rule("deep", "depth", 10.0, 0.0);
  rule.labels = {{"shard", "1"}};
  AlertEngine engine(store, registry, {std::move(rule)});

  shard0.set(99);  // over the line, but the rule only watches shard 1
  shard1.set(5);
  store.sample_at(1 * kSecond);
  engine.evaluate(1 * kSecond);
  EXPECT_EQ(engine.status()[0].state, AlertState::kInactive);

  shard1.set(42);
  store.sample_at(2 * kSecond);
  engine.evaluate(2 * kSecond);
  const AlertEngine::RuleStatus status = engine.status()[0];
  EXPECT_EQ(status.state, AlertState::kFiring);
  EXPECT_DOUBLE_EQ(status.last_value, 42.0);
  EXPECT_EQ(status.series, "depth{shard=\"1\"}");
}

TEST(ObsAlert, RateRuleMeasuresPerSecondChangeOverTheWindow) {
  Registry registry;
  Counter& counter = registry.counter("rejected_total");
  TimeSeriesStore store(registry, manual_config());

  AlertRule rule;
  rule.name = "spike";
  rule.metric = "rejected_total";
  rule.kind = AlertKind::kRate;
  rule.op = AlertOp::kGt;
  rule.value = 5.0;  // per second
  rule.window_seconds = 60.0;
  AlertEngine engine(store, registry, {std::move(rule)});

  store.sample_at(0);
  engine.evaluate(0);
  // One point: no rate yet, the rule cannot trigger.
  EXPECT_EQ(engine.status()[0].state, AlertState::kInactive);

  counter.add(40);  // 40 over 10 s = 4/s: under the 5/s bound
  store.sample_at(10 * kSecond);
  engine.evaluate(10 * kSecond);
  EXPECT_EQ(engine.status()[0].state, AlertState::kInactive);
  EXPECT_DOUBLE_EQ(engine.status()[0].last_value, 4.0);

  counter.add(160);  // 200 over 20 s = 10/s: over it
  store.sample_at(20 * kSecond);
  engine.evaluate(20 * kSecond);
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
  EXPECT_DOUBLE_EQ(engine.status()[0].last_value, 10.0);
}

TEST(ObsAlert, AbsenceRuleFiresOnMissingThenStaleSeries) {
  Registry registry;
  TimeSeriesConfig config = manual_config();
  config.selectors = {"m"};  // so other metrics never refresh the series
  TimeSeriesStore store(registry, config);

  AlertRule rule;
  rule.name = "gone";
  rule.metric = "m";
  rule.kind = AlertKind::kAbsence;
  rule.stale_seconds = 10.0;
  AlertEngine engine(store, registry, {std::move(rule)});

  // No such series at all: absent from the first evaluation.
  engine.evaluate(1 * kSecond);
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.status()[0].series, "m (no matching series)");

  // The metric appears and is fresh: the alert resolves.
  registry.gauge("m").set(1);
  store.sample_at(2 * kSecond);
  engine.evaluate(2 * kSecond);
  EXPECT_EQ(engine.status()[0].state, AlertState::kResolved);

  // Time passes with no new samples: stale again.
  engine.evaluate(20 * kSecond);
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
  EXPECT_DOUBLE_EQ(engine.status()[0].last_value, 18.0);  // age seconds
}

TEST(ObsAlert, JsonAndTextPayloadsNameRuleStateAndOffender) {
  Registry registry;
  Gauge& gauge = registry.gauge("m");
  TimeSeriesStore store(registry, manual_config());
  AlertEngine engine(store, registry,
                     {threshold_rule("hot", "m", 10.0, 0.0)});
  gauge.set(77);
  store.sample_at(kSecond);
  engine.evaluate(kSecond);

  const std::string json = engine.to_json(2 * kSecond);
  EXPECT_NE(json.find("\"firing\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"hot\""), std::string::npos);
  EXPECT_NE(json.find("\"state\": \"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"last_value\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"state_age_seconds\": 1.000"), std::string::npos);

  const std::string text = engine.to_text(2 * kSecond);
  EXPECT_NE(text.find("1 firing"), std::string::npos);
  EXPECT_NE(text.find("[firing"), std::string::npos);
  EXPECT_NE(text.find("hot"), std::string::npos);
  EXPECT_NE(text.find("m > 10"), std::string::npos);
}

}  // namespace
}  // namespace causaliot::obs
