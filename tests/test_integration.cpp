// End-to-end integration tests: simulate -> preprocess -> mine -> calibrate
// -> monitor, exercising the public API exactly as a deployment would.
#include <gtest/gtest.h>

#include <filesystem>

#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"

namespace causaliot::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::HomeProfile profile = sim::contextact_profile();
    profile.days = 10.0;
    ExperimentConfig config;
    config.seed = 20230;
    experiment_ =
        new Experiment(build_experiment(std::move(profile), config));
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }
  static Experiment* experiment_;
};

Experiment* IntegrationTest::experiment_ = nullptr;

TEST_F(IntegrationTest, MiningFindsAutocorrelationBackbone) {
  const MiningEvaluation eval = evaluate_mining(
      experiment_->model.graph, experiment_->ground_truth,
      experiment_->sim.ground_truth);
  // Autocorrelation is the easiest interaction class; most devices should
  // be found.
  const std::size_t self_total = experiment_->ground_truth.count_by_source(
      sim::InteractionSource::kAutocorrelation);
  EXPECT_GE(eval.identified_by_source[static_cast<std::size_t>(
                sim::InteractionSource::kAutocorrelation)],
            self_total * 3 / 4);
  EXPECT_GT(eval.precision, 0.5);
  EXPECT_GT(eval.recall, 0.35);
}

TEST_F(IntegrationTest, MiningFindsFrequentAutomationRules) {
  // R2 (bathroom exit -> stove) and R12 (sink -> washer) fire hundreds of
  // times; the DIG should contain them.
  const auto& catalog = experiment_->catalog();
  const auto stove = catalog.find("power_stove").value();
  const auto bathroom = catalog.find("pe_bathroom").value();
  const auto sink = catalog.find("water_sink").value();
  const auto washer = catalog.find("power_washer").value();
  const std::size_t found =
      experiment_->model.graph.has_interaction(bathroom, stove) +
      experiment_->model.graph.has_interaction(sink, washer);
  EXPECT_GE(found, 1u);
}

TEST_F(IntegrationTest, ThresholdBoundsTrainingAlarmRate) {
  // By construction of the q-th percentile, at most ~(100 - q)% of
  // training events score at or above the threshold.
  const auto& scores = experiment_->model.training_scores;
  std::size_t above = 0;
  for (double score : scores) {
    above += score > experiment_->model.score_threshold;
  }
  EXPECT_LE(static_cast<double>(above) / scores.size(), 0.011);
}

TEST_F(IntegrationTest, ContextualDetectionBeatsChance) {
  inject::AnomalyInjector injector(experiment_->catalog(),
                                   experiment_->profile,
                                   experiment_->sim.ground_truth);
  inject::ContextualConfig config;
  config.anomaly_case = inject::ContextualCase::kRemoteControl;
  config.injection_count = 300;
  config.seed = 9;
  const inject::InjectionResult stream = injector.inject_contextual(
      experiment_->test_series.events(),
      experiment_->test_series.snapshot_state(0), config);
  const stats::ConfusionCounts counts =
      evaluate_contextual(experiment_->model, stream);
  EXPECT_GT(counts.recall(), 0.4);
  EXPECT_GT(counts.precision(), 0.4);
  EXPECT_LT(counts.false_positive_rate(), 0.1);
}

TEST_F(IntegrationTest, CollectiveDetectionTracksChains) {
  inject::AnomalyInjector injector(experiment_->catalog(),
                                   experiment_->profile,
                                   experiment_->sim.ground_truth);
  inject::CollectiveConfig config;
  config.anomaly_case = inject::CollectiveCase::kChainedAutomation;
  config.chain_count = 150;
  config.k_max = 3;
  config.seed = 10;
  const inject::InjectionResult stream = injector.inject_collective(
      experiment_->test_series.events(),
      experiment_->test_series.snapshot_state(0), config);
  ASSERT_GT(stream.chain_count, 10u);
  const CollectiveEvaluation eval =
      evaluate_collective(experiment_->model, stream, config.k_max);
  EXPECT_GT(eval.detected_fraction(), 0.25);
  EXPECT_GT(eval.avg_detection_length, 1.0);
}

TEST_F(IntegrationTest, DigSurvivesSaveLoadWithIdenticalScores) {
  const auto path =
      std::filesystem::temp_directory_path() / "causaliot_integration.dig";
  ASSERT_TRUE(experiment_->model.graph.save(path.string()).ok());
  const auto loaded = graph::InteractionGraph::load(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok());

  // Score the same stream with both graphs: identical results.
  detect::MonitorConfig config;
  config.score_threshold = experiment_->model.score_threshold;
  detect::EventMonitor original(experiment_->model.graph, config,
                                experiment_->test_series.snapshot_state(0));
  detect::EventMonitor reloaded(loaded.value(), config,
                                experiment_->test_series.snapshot_state(0));
  for (std::size_t j = 1; j <= 500 && j < experiment_->test_series.length();
       ++j) {
    const preprocess::BinaryEvent& event =
        experiment_->test_series.event_at(j);
    EXPECT_DOUBLE_EQ(original.score_event(event),
                     reloaded.score_event(event));
  }
}

TEST_F(IntegrationTest, MonitorIsDeterministic) {
  detect::EventMonitor a = experiment_->model.make_monitor(
      3, experiment_->test_series.snapshot_state(0));
  detect::EventMonitor b = experiment_->model.make_monitor(
      3, experiment_->test_series.snapshot_state(0));
  std::size_t alarms_a = 0;
  std::size_t alarms_b = 0;
  for (std::size_t j = 1; j < experiment_->test_series.length(); ++j) {
    const preprocess::BinaryEvent& event =
        experiment_->test_series.event_at(j);
    alarms_a += a.process(event).has_value();
    alarms_b += b.process(event).has_value();
  }
  EXPECT_EQ(alarms_a, alarms_b);
}

TEST_F(IntegrationTest, EventLogRoundTripReproducesPipeline) {
  const auto path =
      std::filesystem::temp_directory_path() / "causaliot_trace.csv";
  ASSERT_TRUE(experiment_->sim.log.save_csv(path.string()).ok());
  const auto loaded = telemetry::EventLog::load_csv(
      path.string(), experiment_->sim.log.catalog());
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), experiment_->sim.log.size());

  // Re-preprocessing the loaded trace yields the same sanitized stream.
  preprocess::Preprocessor preprocessor;
  const auto redo = preprocessor.run(loaded.value());
  EXPECT_EQ(redo.sanitized_events.size(),
            experiment_->pre.sanitized_events.size());
}

}  // namespace
}  // namespace causaliot::core
