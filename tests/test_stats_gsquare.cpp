#include "causaliot/stats/gsquare.hpp"

#include <gtest/gtest.h>

#include "causaliot/util/rng.hpp"

namespace causaliot::stats {
namespace {

using Column = std::vector<std::uint8_t>;

Column random_column(std::size_t n, util::Rng& rng) {
  Column column(n);
  for (auto& value : column) {
    value = static_cast<std::uint8_t>(rng.uniform(2));
  }
  return column;
}

TEST(GSquare, IndependentColumnsGiveHighPValue) {
  util::Rng rng(1);
  const Column x = random_column(5000, rng);
  const Column y = random_column(5000, rng);
  const GSquareResult result = g_square_test(x, y);
  EXPECT_GT(result.p_value, 0.001);
  EXPECT_EQ(result.sample_count, 5000u);
}

TEST(GSquare, IdenticalColumnsAreDependent) {
  util::Rng rng(2);
  const Column x = random_column(2000, rng);
  const GSquareResult result = g_square_test(x, x);
  EXPECT_LT(result.p_value, 1e-10);
  EXPECT_GT(result.statistic, 100.0);
}

TEST(GSquare, NoisyCopyIsDependent) {
  util::Rng rng(3);
  const Column x = random_column(5000, rng);
  Column y = x;
  for (auto& value : y) {
    if (rng.bernoulli(0.2)) value ^= 1;  // 20% flip noise
  }
  EXPECT_LT(g_square_test(x, y).p_value, 1e-6);
}

TEST(GSquare, ChainBecomesIndependentGivenMediator) {
  // X -> Z -> Y: X and Y are marginally dependent but independent given Z.
  util::Rng rng(4);
  const std::size_t n = 20000;
  Column x(n);
  Column z(n);
  Column y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    z[i] = rng.bernoulli(0.9) ? x[i] : static_cast<std::uint8_t>(1 - x[i]);
    y[i] = rng.bernoulli(0.9) ? z[i] : static_cast<std::uint8_t>(1 - z[i]);
  }
  EXPECT_LT(g_square_test(x, y).p_value, 1e-10);  // marginally dependent
  const std::vector<std::span<const std::uint8_t>> given{z};
  EXPECT_GT(g_square_test(x, y, given).p_value, 0.001);  // screened off
}

TEST(GSquare, CommonCauseScreenedOff) {
  // X <- Z -> Y.
  util::Rng rng(5);
  const std::size_t n = 20000;
  Column x(n);
  Column z(n);
  Column y(n);
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = static_cast<std::uint8_t>(rng.uniform(2));
    x[i] = rng.bernoulli(0.85) ? z[i] : static_cast<std::uint8_t>(1 - z[i]);
    y[i] = rng.bernoulli(0.85) ? z[i] : static_cast<std::uint8_t>(1 - z[i]);
  }
  EXPECT_LT(g_square_test(x, y).p_value, 1e-10);
  const std::vector<std::span<const std::uint8_t>> given{z};
  EXPECT_GT(g_square_test(x, y, given).p_value, 0.001);
}

TEST(GSquare, DirectEdgeSurvivesConditioning) {
  // X -> Y with an irrelevant W: conditioning on W must not remove the
  // dependence.
  util::Rng rng(6);
  const std::size_t n = 10000;
  Column x(n);
  Column y(n);
  Column w(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    y[i] = rng.bernoulli(0.9) ? x[i] : static_cast<std::uint8_t>(1 - x[i]);
    w[i] = static_cast<std::uint8_t>(rng.uniform(2));
  }
  const std::vector<std::span<const std::uint8_t>> given{w};
  EXPECT_LT(g_square_test(x, y, given).p_value, 1e-10);
}

TEST(GSquare, EmptyInputIsVacuouslyIndependent) {
  const Column empty;
  const GSquareResult result = g_square_test(empty, empty);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_EQ(result.sample_count, 0u);
}

TEST(GSquare, ConstantColumnHasZeroDof) {
  const Column x(100, 1);  // constant
  util::Rng rng(7);
  const Column y = random_column(100, rng);
  const GSquareResult result = g_square_test(x, y);
  EXPECT_DOUBLE_EQ(result.dof, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(GSquare, DofAdjustsForEmptyStrata) {
  // Conditioning set value 1 never occurs -> only one live stratum.
  util::Rng rng(8);
  const std::size_t n = 1000;
  const Column x = random_column(n, rng);
  const Column y = random_column(n, rng);
  const Column z(n, 0);  // constant conditioning variable
  const std::vector<std::span<const std::uint8_t>> given{z};
  const GSquareResult result = g_square_test(x, y, given);
  EXPECT_DOUBLE_EQ(result.dof, 1.0);  // one stratum * (2-1)(2-1)
}

TEST(GSquare, SmallSampleGuardSkips) {
  util::Rng rng(9);
  const std::size_t n = 30;
  const Column x = random_column(n, rng);
  const Column y = random_column(n, rng);
  std::vector<Column> z_data(3);
  std::vector<std::span<const std::uint8_t>> z;
  for (auto& column : z_data) {
    column = random_column(n, rng);
    z.emplace_back(column);
  }
  GSquareOptions options;
  options.min_samples_per_dof = 10.0;  // needs 10 * 2^3 = 80 > 30 samples
  const GSquareResult result = g_square_test(x, y, z, options);
  EXPECT_TRUE(result.skipped_insufficient_data);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(GSquare, GuardDisabledByDefault) {
  util::Rng rng(10);
  const Column x = random_column(30, rng);
  const Column y = random_column(30, rng);
  EXPECT_FALSE(g_square_test(x, y).skipped_insufficient_data);
}

TEST(GSquare, StatisticIsNonNegative) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Column x = random_column(200, rng);
    const Column y = random_column(200, rng);
    EXPECT_GE(g_square_test(x, y).statistic, 0.0);
  }
}

// Property: p-values of independent data are roughly uniform — the
// fraction below alpha should be about alpha.
class GSquareCalibration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GSquareCalibration, FalsePositiveRateNearAlpha) {
  const std::size_t n = GetParam();
  util::Rng rng(12345);
  const double alpha = 0.05;
  int rejections = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    const Column x = random_column(n, rng);
    const Column y = random_column(n, rng);
    rejections += g_square_test(x, y).p_value <= alpha;
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_NEAR(rate, alpha, 0.04);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, GSquareCalibration,
                         ::testing::Values(100, 500, 2000));

}  // namespace
}  // namespace causaliot::stats
