// Watchdog semantics over a real DetectionService: the stall detector
// (frozen heartbeat + non-empty queue, with idle explicitly not stuck),
// exact queue-saturation ppm math, the /statusz JSON fragment, the
// built-in default ruleset, and an end-to-end pass where a genuinely
// wedged shard drives the shard_stalled rule to firing through the
// TimeSeriesStore + AlertEngine.
//
// Determinism comes from an UNSTARTED service: events submitted before
// start() sit in the shard queue (depth > 0) while the worker heartbeat
// stays frozen at zero — a perfect, reproducible stall. Timestamps are
// synthetic; nothing here sleeps or races a real worker.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "causaliot/core/experiment.hpp"
#include "causaliot/obs/alert.hpp"
#include "causaliot/obs/time_series.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/serve/watchdog.hpp"

namespace causaliot::serve {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

class ServeWatchdogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::HomeProfile profile = sim::contextact_profile();
    profile.days = 6.0;
    core::ExperimentConfig config;
    config.seed = 77;
    experiment_ =
        new core::Experiment(core::build_experiment(std::move(profile), config));
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static std::shared_ptr<const ModelSnapshot> snapshot(std::uint64_t version) {
    const core::TrainedModel& model = experiment_->model;
    return make_snapshot(model.graph, model.score_threshold,
                         model.laplace_alpha, version);
  }

  /// A one-shard service with `queued` events parked in its queue and
  /// the worker not yet started: heartbeat 0, depth `queued`.
  static std::unique_ptr<DetectionService> parked_service(
      std::size_t queue_capacity, std::size_t queued) {
    ServiceConfig config;
    config.shard_count = 1;
    config.queue_capacity = queue_capacity;
    config.overflow = util::OverflowPolicy::kBlock;
    auto service = std::make_unique<DetectionService>(
        std::move(config), [](const ServedAlarm&) {});
    const TenantHandle home = service->add_tenant(
        "home-0", snapshot(1), experiment_->test_series.snapshot_state(0));
    EXPECT_NE(home, DetectionService::kInvalidTenant);
    for (std::size_t i = 0; i < queued; ++i) {
      EXPECT_EQ(service->submit(home, experiment_->test_runtime_events[i]),
                DetectionService::SubmitResult::kAccepted);
    }
    return service;
  }

  static core::Experiment* experiment_;
};

core::Experiment* ServeWatchdogTest::experiment_ = nullptr;

TEST_F(ServeWatchdogTest, FrozenHeartbeatWithQueuedWorkIsAStall) {
  auto service = parked_service(/*queue_capacity=*/64, /*queued=*/8);
  Watchdog watchdog(*service);  // default stall_seconds = 5

  // First observation only initializes the tracking: a watchdog that
  // boots next to an already-wedged shard must still wait out
  // stall_seconds before accusing it.
  watchdog.refresh(1 * kSecond);
  EXPECT_EQ(watchdog.stalled_shards(), 0u);

  // 4s frozen: under the bar.
  watchdog.refresh(5 * kSecond);
  EXPECT_EQ(watchdog.stalled_shards(), 0u);

  // 6s frozen with depth 8: stalled.
  watchdog.refresh(7 * kSecond);
  EXPECT_EQ(watchdog.stalled_shards(), 1u);
  obs::Registry& registry = service->registry();
  EXPECT_EQ(registry.gauge("serve_watchdog_shard_stalled", {{"shard", "0"}})
                .value(),
            1);
  EXPECT_EQ(registry.gauge("serve_watchdog_stalled_shards").value(), 1);
  EXPECT_EQ(registry.gauge("serve_watchdog_shard_heartbeat", {{"shard", "0"}})
                .value(),
            0);

  const std::string json = watchdog.json(7 * kSecond);
  EXPECT_NE(json.find("\"stalled_shards\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"stalled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 8"), std::string::npos);

  // The worker comes to life and drains the queue: the very next
  // refresh sees the heartbeat advance and clears the verdict.
  service->start();
  service->shutdown();
  watchdog.refresh(8 * kSecond);
  EXPECT_EQ(watchdog.stalled_shards(), 0u);
  EXPECT_EQ(registry.gauge("serve_watchdog_shard_stalled", {{"shard", "0"}})
                .value(),
            0);
  // Every parked event was dequeued exactly once (no pre-start controls
  // ride the queue), so the heartbeat is exact.
  EXPECT_EQ(service->shard_progress(0).heartbeat, 8u);
  EXPECT_EQ(registry.gauge("serve_watchdog_shard_heartbeat", {{"shard", "0"}})
                .value(),
            8);
}

TEST_F(ServeWatchdogTest, IdleShardIsNeverStalled) {
  // No queued work at all: the heartbeat is frozen at zero forever, but
  // an empty queue proves nothing about the worker.
  auto service = parked_service(/*queue_capacity=*/64, /*queued=*/0);
  Watchdog watchdog(*service);
  watchdog.refresh(1 * kSecond);
  watchdog.refresh(100 * kSecond);
  watchdog.refresh(1000 * kSecond);
  EXPECT_EQ(watchdog.stalled_shards(), 0u);
  EXPECT_EQ(service->registry()
                .gauge("serve_watchdog_shard_stalled", {{"shard", "0"}})
                .value(),
            0);
}

TEST_F(ServeWatchdogTest, SaturationGaugeIsExactPartsPerMillion) {
  auto service = parked_service(/*queue_capacity=*/10, /*queued=*/5);
  Watchdog watchdog(*service);
  watchdog.refresh(1 * kSecond);
  EXPECT_EQ(service->registry()
                .gauge("serve_watchdog_queue_saturation_ppm", {{"shard", "0"}})
                .value(),
            500000);  // 5 / 10 in ppm, exactly
}

TEST_F(ServeWatchdogTest, DefaultRulesCoverTheFiveFailureModes) {
  auto service = parked_service(/*queue_capacity=*/64, /*queued=*/0);
  WatchdogConfig config;
  config.queue_saturation = 0.8;
  config.saturation_for_seconds = 5.0;
  config.reject_rate_per_s = 5.0;
  config.reject_window_seconds = 10.0;
  config.reject_for_seconds = 2.0;
  config.snapshot_age_seconds = 7 * 86400.0;
  Watchdog watchdog(*service, config);

  const std::vector<obs::AlertRule> rules = watchdog.default_rules();
  ASSERT_EQ(rules.size(), 5u);

  EXPECT_EQ(rules[0].name, "shard_stalled");
  EXPECT_EQ(rules[0].metric, "serve_watchdog_shard_stalled");
  EXPECT_EQ(rules[0].kind, obs::AlertKind::kThreshold);
  EXPECT_DOUBLE_EQ(rules[0].for_seconds, 0.0);

  EXPECT_EQ(rules[1].name, "queue_high_watermark");
  EXPECT_EQ(rules[1].metric, "serve_watchdog_queue_saturation_ppm");
  EXPECT_EQ(rules[1].kind, obs::AlertKind::kThreshold);
  EXPECT_EQ(rules[1].op, obs::AlertOp::kGe);
  EXPECT_DOUBLE_EQ(rules[1].value, 0.8 * 1e6);
  EXPECT_DOUBLE_EQ(rules[1].for_seconds, 5.0);

  EXPECT_EQ(rules[2].name, "ingest_reject_spike");
  EXPECT_EQ(rules[2].metric, "serve_ingest_rejected_total");
  EXPECT_EQ(rules[2].kind, obs::AlertKind::kRate);
  EXPECT_DOUBLE_EQ(rules[2].value, 5.0);
  EXPECT_DOUBLE_EQ(rules[2].window_seconds, 10.0);

  EXPECT_EQ(rules[3].name, "model_snapshot_stale");
  EXPECT_EQ(rules[3].metric, "serve_tenant_snapshot_age_seconds");
  EXPECT_EQ(rules[3].kind, obs::AlertKind::kThreshold);
  EXPECT_DOUBLE_EQ(rules[3].value, 7 * 86400.0);

  EXPECT_EQ(rules[4].name, "root_cause_blame_spike");
  EXPECT_EQ(rules[4].metric, "serve_root_cause_rank1_total");
  EXPECT_EQ(rules[4].kind, obs::AlertKind::kRate);
  EXPECT_EQ(rules[4].op, obs::AlertOp::kGt);
  EXPECT_DOUBLE_EQ(rules[4].value, 1.0);
  EXPECT_DOUBLE_EQ(rules[4].window_seconds, 30.0);
  EXPECT_DOUBLE_EQ(rules[4].for_seconds, 5.0);
  // Empty labels: the rate rule watches every per-device instance of the
  // rank-1 counter and alerts on the worst offender.
  EXPECT_TRUE(rules[4].labels.empty());

  // The built-in ruleset must survive the AlertEngine's own validation
  // (unique names, kind/parameter requirements).
  obs::TimeSeriesConfig store_config;
  store_config.interval_ms = 0;
  obs::TimeSeriesStore store(service->registry(), store_config);
  obs::AlertEngine engine(store, service->registry(),
                          watchdog.default_rules());
  EXPECT_EQ(engine.rule_count(), 5u);
}

TEST_F(ServeWatchdogTest, WedgedShardDrivesShardStalledRuleToFiring) {
  // Tiny queue, fully parked: saturation 100%, heartbeat frozen.
  auto service = parked_service(/*queue_capacity=*/4, /*queued=*/4);
  Watchdog watchdog(*service);

  obs::TimeSeriesConfig store_config;
  store_config.interval_ms = 0;  // the test is the sampler
  obs::TimeSeriesStore store(service->registry(), store_config);
  obs::AlertEngine engine(store, service->registry(),
                          watchdog.default_rules());
  // One tick, in the production hook order: watchdog -> sample -> alerts.
  const auto tick = [&](std::uint64_t t_s) {
    watchdog.refresh(t_s * kSecond);
    store.sample_at(t_s * kSecond);
    engine.evaluate(t_s * kSecond);
  };

  tick(1);  // initializes stall tracking; saturation already 100%
  auto status = engine.status();
  ASSERT_EQ(status.size(), 5u);
  EXPECT_EQ(status[0].state, obs::AlertState::kInactive);  // shard_stalled
  EXPECT_EQ(status[1].state,
            obs::AlertState::kPending);  // queue_high_watermark, for 5s

  tick(10);  // 9s frozen: the watchdog declares the stall, both rules fire
  status = engine.status();
  EXPECT_EQ(status[0].state, obs::AlertState::kFiring);
  EXPECT_EQ(status[0].series,
            "serve_watchdog_shard_stalled{shard=\"0\"}");
  EXPECT_EQ(status[1].state, obs::AlertState::kFiring);
  EXPECT_EQ(status[2].state,
            obs::AlertState::kInactive);  // no ingest rejects
  EXPECT_EQ(status[3].state,
            obs::AlertState::kInactive);  // snapshot is fresh
  EXPECT_EQ(status[4].state,
            obs::AlertState::kInactive);  // no rank-1 blame moved
  EXPECT_EQ(engine.firing_count(), 2u);

  // Drain and recover: both alerts resolve on the next tick.
  service->start();
  service->shutdown();
  tick(11);
  status = engine.status();
  EXPECT_EQ(status[0].state, obs::AlertState::kResolved);
  EXPECT_EQ(status[1].state, obs::AlertState::kResolved);
  EXPECT_EQ(engine.firing_count(), 0u);
}

}  // namespace
}  // namespace causaliot::serve
