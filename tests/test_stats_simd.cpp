// stats::simd — the capability-dispatched kernel backend.
//
// The correctness contract is bit-identity: every compiled-in backend the
// host can execute must return exactly the popcounts the scalar reference
// returns, for every primitive, on ragged logical lengths (padding in
// play) and with and without the mask store. The facade tests pin the
// name/parse round-trip, the storage alignment contract, and the
// force/restore semantics the test suites and benchmarks rely on.
#include "causaliot/stats/simd_backend.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "causaliot/util/rng.hpp"

namespace {

using namespace causaliot;
using stats::simd::Backend;

TEST(SimdStorage, PaddedWordCountRoundsUpToStride) {
  EXPECT_EQ(stats::padded_word_count(0), 0u);
  EXPECT_EQ(stats::padded_word_count(1), stats::kSimdWordStride);
  EXPECT_EQ(stats::padded_word_count(stats::kSimdWordStride),
            stats::kSimdWordStride);
  EXPECT_EQ(stats::padded_word_count(stats::kSimdWordStride + 1),
            2 * stats::kSimdWordStride);
}

TEST(SimdStorage, AlignedWordsIsAlignedPaddedAndZeroed) {
  const stats::AlignedWords words(11);
  EXPECT_EQ(words.size(), stats::padded_word_count(11));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words.data()) %
                stats::kSimdWordAlign,
            0u);
  for (std::size_t i = 0; i < words.size(); ++i) EXPECT_EQ(words[i], 0u);
}

TEST(SimdStorage, AlignedWordsCopyAndMovePreserveContents) {
  stats::AlignedWords words(3);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = 0x0123456789abcdefULL * (i + 1);
  }
  const stats::AlignedWords copy(words);
  ASSERT_EQ(copy.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(copy[i], words[i]);
  }
  const std::uint64_t first = words[0];
  const stats::AlignedWords moved(std::move(words));
  EXPECT_EQ(moved[0], first);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(moved.data()) %
                stats::kSimdWordAlign,
            0u);
}

TEST(SimdFacade, NameParseRoundTrip) {
  for (const Backend backend :
       {Backend::kScalar, Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    const auto parsed =
        stats::simd::parse_backend(stats::simd::backend_name(backend));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(stats::simd::parse_backend("sse9").has_value());
  EXPECT_FALSE(stats::simd::parse_backend("").has_value());
}

TEST(SimdFacade, ScalarAlwaysAvailableAndListedLast) {
  EXPECT_TRUE(stats::simd::backend_compiled(Backend::kScalar));
  EXPECT_TRUE(stats::simd::backend_supported(Backend::kScalar));
  const auto available = stats::simd::available_backends();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.back(), Backend::kScalar);
  // Widest-first: the auto pick is the head of the list.
  EXPECT_EQ(available.front(), stats::simd::auto_backend());
}

TEST(SimdFacade, SupportImpliesCompiled) {
  for (const Backend backend :
       {Backend::kScalar, Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    if (stats::simd::backend_supported(backend)) {
      EXPECT_TRUE(stats::simd::backend_compiled(backend));
    }
  }
}

TEST(SimdFacade, ForceBackendSwitchesAndRefusesUnsupported) {
  const Backend before = stats::simd::chosen();
  for (const Backend backend :
       {Backend::kScalar, Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    if (stats::simd::backend_supported(backend)) {
      EXPECT_TRUE(stats::simd::force_backend(backend));
      EXPECT_EQ(stats::simd::chosen(), backend);
    } else {
      EXPECT_FALSE(stats::simd::force_backend(backend));
      // A refused force leaves the previous choice in place.
      EXPECT_TRUE(stats::simd::backend_supported(stats::simd::chosen()));
    }
  }
  EXPECT_TRUE(stats::simd::force_backend(before));
}

// ---- bit-identity of every supported backend against scalar ------------

// Column whose logical bit length n leaves the padded tail partially
// used: bits [0, n) random, bits [n, 64 * padded) zero, exactly as
// PackedColumn builds its storage.
stats::AlignedWords random_column(std::size_t n, util::Rng& rng) {
  stats::AlignedWords words((n + 63) / 64);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.4)) {
      words[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
  return words;
}

struct PrimitiveResults {
  std::uint64_t and_pop = 0;
  std::vector<std::uint64_t> marginal_p;
  std::vector<std::uint64_t> marginal_py;
  std::uint64_t masked_p = 0;
  std::uint64_t masked_py = 0;
  std::vector<std::uint64_t> mask;

  bool operator==(const PrimitiveResults&) const = default;
};

PrimitiveResults run_primitives(const stats::simd::Kernels& kernels,
                                const std::vector<stats::AlignedWords>& cols,
                                std::size_t padded, bool store_mask) {
  PrimitiveResults out;
  out.and_pop = kernels.and_popcount(cols[0].data(), cols[1].data(), padded);

  const std::size_t k =
      std::min(cols.size() - 1, stats::simd::kMarginalPassMaxColumns);
  std::vector<const std::uint64_t*> ptrs;
  for (std::size_t i = 1; i <= k; ++i) ptrs.push_back(cols[i].data());
  out.marginal_p.resize(k);
  out.marginal_py.resize(k);
  kernels.marginal_pass(ptrs.data(), k, cols[0].data(), padded,
                        out.marginal_p.data(), out.marginal_py.data());

  stats::AlignedWords mask(padded);
  kernels.masked_pass(cols[1].data(), cols[2].data(), cols[0].data(),
                      store_mask ? mask.data() : nullptr, padded,
                      &out.masked_p, &out.masked_py);
  if (store_mask) {
    out.mask.assign(mask.data(), mask.data() + mask.size());
  }
  return out;
}

TEST(SimdKernels, EveryBackendMatchesScalarBitForBit) {
  util::Rng rng(20230607);
  const Backend before = stats::simd::chosen();
  ASSERT_TRUE(stats::simd::force_backend(Backend::kScalar));
  const stats::simd::Kernels& scalar = stats::simd::kernels();

  // Ragged lengths spanning: sub-word, exact word, exact stride, stride+1
  // word, and a multi-stride column with a partial tail.
  for (const std::size_t n : {1ul, 63ul, 64ul, 511ul, 512ul, 513ul, 1000ul,
                              4096ul, 4097ul, 10007ul}) {
    std::vector<stats::AlignedWords> cols;
    for (std::size_t c = 0; c < 1 + stats::simd::kMarginalPassMaxColumns;
         ++c) {
      cols.push_back(random_column(n, rng));
    }
    const std::size_t padded = cols[0].size();
    for (const bool store_mask : {false, true}) {
      const PrimitiveResults reference =
          run_primitives(scalar, cols, padded, store_mask);
      for (const Backend backend : stats::simd::available_backends()) {
        ASSERT_TRUE(stats::simd::force_backend(backend));
        const PrimitiveResults got =
            run_primitives(stats::simd::kernels(), cols, padded, store_mask);
        EXPECT_EQ(got, reference)
            << "backend " << stats::simd::backend_name(backend) << " n=" << n
            << " store_mask=" << store_mask;
      }
      ASSERT_TRUE(stats::simd::force_backend(Backend::kScalar));
    }
  }
  ASSERT_TRUE(stats::simd::force_backend(before));
}

TEST(SimdKernels, MarginalPassCountsEveryBatchWidth) {
  util::Rng rng(7);
  const std::size_t n = 777;
  std::vector<stats::AlignedWords> cols;
  for (std::size_t c = 0; c < 1 + stats::simd::kMarginalPassMaxColumns; ++c) {
    cols.push_back(random_column(n, rng));
  }
  const std::size_t padded = cols[0].size();
  for (const Backend backend : stats::simd::available_backends()) {
    ASSERT_TRUE(stats::simd::force_backend(backend));
    const stats::simd::Kernels& kernels = stats::simd::kernels();
    for (std::size_t k = 1; k <= stats::simd::kMarginalPassMaxColumns; ++k) {
      std::vector<const std::uint64_t*> ptrs;
      for (std::size_t i = 1; i <= k; ++i) ptrs.push_back(cols[i].data());
      std::vector<std::uint64_t> p(k), p_y(k);
      kernels.marginal_pass(ptrs.data(), k, cols[0].data(), padded, p.data(),
                            p_y.data());
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(p[i],
                  kernels.and_popcount(cols[i + 1].data(), cols[i + 1].data(),
                                       padded));
        EXPECT_EQ(p_y[i], kernels.and_popcount(cols[i + 1].data(),
                                               cols[0].data(), padded));
      }
    }
  }
  ASSERT_TRUE(stats::simd::force_backend(Backend::kScalar));
}

}  // namespace
