// causaliot — command-line front end for the library.
//
//   causaliot simulate --profile contextact --days 7 --seed 1 --out trace.csv
//   causaliot train    --trace trace.csv --profile contextact --out model.dig
//   causaliot monitor  --model model.dig --trace live.csv --profile contextact
//                      [--kmax 3] [--threshold 0.99]
//   causaliot serve    --model model.dig --trace live.csv [--tenants 4]
//                      [--shards 2] [--speedup 0] [--policy block]
//                      [--stdin 1] [--ingest-port 0] [--ingest-http 0]
//                      [--alert-rules rules.jsonl] [--history-interval 1000]
//   causaliot inspect  --model model.dig --profile contextact [--dot graph.dot]
//
// The profile argument supplies the device catalog (column order of the
// CSV); custom deployments would register their own catalog the same way.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"
#include "causaliot/core/pipeline.hpp"
#include "causaliot/detect/explanation.hpp"
#include "causaliot/detect/root_cause.hpp"
#include "causaliot/graph/analysis.hpp"
#include "causaliot/inject/injector.hpp"
#include "causaliot/net/line_server.hpp"
#include "causaliot/obs/alert.hpp"
#include "causaliot/obs/http_server.hpp"
#include "causaliot/obs/registry.hpp"
#include "causaliot/obs/time_series.hpp"
#include "causaliot/obs/trace.hpp"
#include "causaliot/serve/alarm_json.hpp"
#include "causaliot/serve/ingest.hpp"
#include "causaliot/serve/introspection.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/serve/watchdog.hpp"
#include "causaliot/sim/simulator.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/telemetry/jsonl.hpp"
#include "causaliot/util/file.hpp"
#include "causaliot/util/log.hpp"
#include "causaliot/util/strings.hpp"

namespace {

using namespace causaliot;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const char* get(const std::string& key, const char* fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::strtod(it->second.c_str(),
                                                        nullptr);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  bool require(const std::string& key) const {
    if (options.contains(key)) return true;
    std::fprintf(stderr, "missing required option --%s\n", key.c_str());
    return false;
  }
};

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "expected --option, got '%s'\n", argv[i]);
      return std::nullopt;
    }
    args.options[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

// Atomic (temp file + rename) so a concurrent scraper of --prom-out /
// --trace-out never reads a truncated document.
bool write_text_file(const std::string& path, const std::string& content) {
  const auto status = util::write_file_atomic(path, content);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 status.error().to_string().c_str());
    return false;
  }
  return true;
}

// Builds the introspection server for --listen (unstarted, no routes);
// nullptr when the flag is absent.
std::unique_ptr<obs::HttpServer> make_listener(const Args& args) {
  if (!args.options.contains("listen")) return nullptr;
  obs::HttpServerConfig config;
  config.port = static_cast<std::uint16_t>(args.get_u64("listen", 0));
  config.registry = &obs::Registry::global();
  return std::make_unique<obs::HttpServer>(std::move(config));
}

// Starts `server` and announces the bound address on stderr (stdout is
// the alarm/metrics JSONL stream; CI greps this line for the ephemeral
// port picked by --listen 0).
bool start_listener(obs::HttpServer& server) {
  const auto port = server.start();
  if (!port.ok()) {
    std::fprintf(stderr, "cannot start introspection server: %s\n",
                 port.error().to_string().c_str());
    return false;
  }
  std::fprintf(stderr, "introspection listening on http://127.0.0.1:%u\n",
               static_cast<unsigned>(*port));
  std::fflush(stderr);
  return true;
}

// Per-stage timing table from the tracer's aggregated span totals.
void print_stage_table(const obs::Tracer& tracer) {
  const auto totals = tracer.stage_totals();
  std::printf("%-20s %10s %12s\n", "stage", "spans", "total ms");
  for (const auto& [name, total] : totals) {
    std::printf("%-20s %10llu %12.3f\n", name.c_str(),
                static_cast<unsigned long long>(total.count),
                static_cast<double>(total.total_ns) / 1e6);
  }
}

// --simd NAME: pin the CI counting kernels to one backend instead of the
// capability probe's pick (equivalent to CAUSALIOT_SIMD=NAME, but a bad
// name is a usage error here rather than a warn-and-continue). Applied
// before command dispatch so train, monitor, and serve all honour it.
bool apply_simd_flag(const Args& args) {
  if (!args.options.contains("simd")) return true;
  const std::string& name = args.options.at("simd");
  const auto backend = stats::simd::parse_backend(name);
  if (backend && stats::simd::force_backend(*backend)) return true;
  std::string available;
  for (const stats::simd::Backend b : stats::simd::available_backends()) {
    available += ' ';
    available += stats::simd::backend_name(b);
  }
  std::fprintf(stderr,
               "--simd '%s' is %s on this host; available:%s\n",
               name.c_str(), backend ? "not supported" : "not a backend",
               available.c_str());
  return false;
}

std::optional<sim::HomeProfile> profile_by_name(const std::string& name) {
  if (name == "contextact") return sim::contextact_profile();
  if (name == "casas") return sim::casas_profile();
  std::fprintf(stderr, "unknown profile '%s' (contextact | casas)\n",
               name.c_str());
  return std::nullopt;
}

int cmd_simulate(const Args& args) {
  if (!args.require("out")) return 2;
  auto profile = profile_by_name(args.get("profile", "contextact"));
  if (!profile) return 2;
  profile->days = args.get_double("days", profile->days);
  const std::uint64_t seed = args.get_u64("seed", 1);

  sim::SmartHomeSimulator simulator(std::move(*profile), seed);
  const sim::SimulationResult result = simulator.run();
  const std::string out = args.get("out", "");
  const bool jsonl = std::string(args.get("format", "csv")) == "jsonl";
  const auto status = jsonl ? telemetry::save_jsonl(result.log, out)
                            : result.log.save_csv(out);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("wrote %zu events (%zu user, %zu automation) to %s\n",
              result.log.size(), result.user_events,
              result.automation_events, out.c_str());
  return 0;
}

std::optional<telemetry::EventLog> load_trace(const Args& args) {
  auto profile = profile_by_name(args.get("profile", "contextact"));
  if (!profile) return std::nullopt;
  telemetry::DeviceCatalog catalog;
  for (const telemetry::DeviceInfo& info : profile->devices) {
    if (!catalog.add(info).ok()) return std::nullopt;
  }
  const std::string trace = args.get("trace", "");
  const bool jsonl =
      std::string(args.get("format", "")) == "jsonl" ||
      (trace.size() > 6 && trace.substr(trace.size() - 6) == ".jsonl");
  auto log = jsonl ? telemetry::load_jsonl(trace, std::move(catalog))
                   : telemetry::EventLog::load_csv(trace, catalog);
  if (!log.ok()) {
    std::fprintf(stderr, "cannot load trace: %s\n",
                 log.error().to_string().c_str());
    return std::nullopt;
  }
  return std::move(log).value();
}

int cmd_train(const Args& args) {
  if (!args.require("trace") || !args.require("out")) return 2;
  const auto log = load_trace(args);
  if (!log) return 1;

  const std::string trace_out = args.get("trace-out", "");
  const bool verbose = args.get_u64("verbose", 0) != 0;
  if (!trace_out.empty() || verbose) {
    obs::Tracer::global().set_enabled(true);
  }

  // --listen: live mining counters + stage totals while a long train
  // runs, instead of waiting for the post-run --prom-out dump.
  std::unique_ptr<obs::HttpServer> http = make_listener(args);
  if (http != nullptr) {
    http->handle("/metrics", [](const obs::HttpRequest&) {
      return obs::HttpResponse::text(obs::Registry::global().to_prometheus(),
                                     obs::kContentTypePrometheus);
    });
    http->handle("/healthz", [](const obs::HttpRequest&) {
      return obs::HttpResponse::text("ok\n");
    });
    // A train run is "ready" the moment it scrapes: there is no warm-up
    // state to gate on, unlike serve.
    http->handle("/readyz", [](const obs::HttpRequest&) {
      return obs::HttpResponse::text("ready\n");
    });
    http->handle("/statusz", [](const obs::HttpRequest&) {
      return obs::HttpResponse::json(util::format(
          "{\"build\": \"causaliot\", \"command\": \"train\", "
          "\"simd_backend\": \"%s\"}",
          std::string(stats::simd::backend_name(stats::simd::chosen()))
              .c_str()));
    });
    http->handle("/tracez", [](const obs::HttpRequest&) {
      return obs::HttpResponse::json(
          obs::Tracer::global().stage_totals_json());
    });
    if (!start_listener(*http)) return 1;
  }

  core::PipelineConfig config;
  config.max_lag = static_cast<std::size_t>(args.get_u64("tau", 0));
  config.alpha = args.get_double("alpha", 0.001);
  config.percentile_q = args.get_double("q", 99.0);
  config.laplace_alpha = args.get_double("laplace", 0.1);
  config.min_samples_per_dof = args.get_double("guard", 10.0);
  config.mining_threads =
      static_cast<std::size_t>(args.get_u64("threads", 1));
  config.ci_batching = args.get_u64("ci-batch", 1) != 0;
  config.simd_backend = args.get("simd", "");
  core::Pipeline pipeline(config);
  const core::TrainedModel model = pipeline.train(*log);

  const std::string out = args.get("out", "");
  if (const auto status = model.graph.save(out); !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("trained on %zu events: tau=%zu, %zu interactions, "
              "threshold=%.4f (simd=%s)\nmodel written to %s\n",
              log->size(), model.lag, model.graph.edge_count(),
              model.score_threshold,
              std::string(stats::simd::backend_name(stats::simd::chosen()))
                  .c_str(),
              out.c_str());
  std::printf("(pass --threshold %.4f to `causaliot monitor`)\n",
              model.score_threshold);

  if (!trace_out.empty() &&
      !write_text_file(trace_out,
                       obs::Tracer::global().export_chrome_json())) {
    return 1;
  }
  if (!trace_out.empty()) {
    std::printf("trace (%zu spans) written to %s — load it at "
                "https://ui.perfetto.dev\n",
                obs::Tracer::global().event_count(), trace_out.c_str());
  }
  const std::string prom_out = args.get("prom-out", "");
  if (!prom_out.empty() &&
      !write_text_file(prom_out,
                       obs::Registry::global().to_prometheus())) {
    return 1;
  }
  if (verbose) print_stage_table(obs::Tracer::global());
  if (http != nullptr) http->stop();
  return 0;
}

int cmd_monitor(const Args& args) {
  if (!args.require("model") || !args.require("trace")) return 2;
  auto profile = profile_by_name(args.get("profile", "contextact"));
  if (!profile) return 2;
  const auto log = load_trace(args);
  if (!log) return 1;
  auto graph = graph::InteractionGraph::load(args.get("model", ""));
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 graph.error().to_string().c_str());
    return 1;
  }
  if (graph.value().device_count() != log->catalog().size()) {
    std::fprintf(stderr, "model/catalog device-count mismatch\n");
    return 1;
  }

  // Discretize the live stream with a model fitted on it (a deployment
  // would persist the training-time DiscretizationModel instead).
  preprocess::Preprocessor preprocessor;
  const preprocess::DiscretizationModel discretization =
      preprocess::DiscretizationModel::fit(*log);
  const auto events =
      preprocessor.discretize_runtime(*log, discretization, 0.0);

  detect::MonitorConfig config;
  config.score_threshold = args.get_double("threshold", 0.99);
  config.k_max = static_cast<std::size_t>(args.get_u64("kmax", 1));
  config.laplace_alpha = args.get_double("laplace", 0.1);
  detect::EventMonitor monitor(
      graph.value(), config,
      std::vector<std::uint8_t>(log->catalog().size(), 0));

  // Same walk parameters as `serve --root-cause-depth`, so batch replay
  // reproduces the served attributions exactly.
  detect::RootCauseConfig root_cause;
  root_cause.max_depth =
      static_cast<std::size_t>(args.get_u64("root-cause-depth", 3));

  std::size_t alarms = 0;
  const auto print_report = [&](const detect::AnomalyReport& report) {
    ++alarms;
    std::printf("%s\n",
                detect::describe_report(
                    report, log->catalog(),
                    detect::attribute_root_cause(report, &graph.value(),
                                                 root_cause))
                    .c_str());
  };
  for (const preprocess::BinaryEvent& event : events) {
    if (const auto report = monitor.process(event)) print_report(*report);
  }
  if (const auto tail = monitor.finish()) print_report(*tail);
  std::printf("-- %zu alarms over %zu events\n", alarms, events.size());
  return 0;
}

// SIGINT/SIGTERM flag for the network-only serve mode (no stdin, no
// trace replay: the process idles until a signal asks it to drain).
volatile std::sig_atomic_t g_serve_interrupted = 0;

void on_serve_signal(int) { g_serve_interrupted = 1; }

int cmd_serve(const Args& args) {
  if (!args.require("model")) return 2;
  const bool from_stdin = args.get_u64("stdin", 0) != 0;
  const bool ingest_tcp = args.options.contains("ingest-port");
  const bool ingest_http = args.options.contains("ingest-http");
  const bool from_trace = args.options.contains("trace");
  if (!from_stdin && !from_trace && !ingest_tcp && !ingest_http) {
    std::fprintf(stderr,
                 "serve needs an event source: --trace, --stdin 1, "
                 "--ingest-port PORT, or --ingest-http PORT\n");
    return 2;
  }
  auto profile = profile_by_name(args.get("profile", "contextact"));
  if (!profile) return 2;
  telemetry::DeviceCatalog catalog;
  for (const telemetry::DeviceInfo& info : profile->devices) {
    if (!catalog.add(info).ok()) return 1;
  }
  auto graph = graph::InteractionGraph::load(args.get("model", ""));
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 graph.error().to_string().c_str());
    return 1;
  }
  if (graph.value().device_count() != catalog.size()) {
    std::fprintf(stderr, "model/catalog device-count mismatch\n");
    return 1;
  }

  serve::ServiceConfig config;
  config.shard_count = static_cast<std::size_t>(args.get_u64("shards", 2));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_u64("queue", 4096));
  const std::string policy = args.get("policy", "block");
  if (policy == "block") {
    config.overflow = util::OverflowPolicy::kBlock;
  } else if (policy == "drop") {
    config.overflow = util::OverflowPolicy::kDropOldest;
  } else if (policy == "reject") {
    config.overflow = util::OverflowPolicy::kReject;
  } else {
    std::fprintf(stderr, "unknown policy '%s' (block | drop | reject)\n",
                 policy.c_str());
    return 2;
  }
  config.session.k_max = static_cast<std::size_t>(args.get_u64("kmax", 1));
  config.session.deduplicate_alarms = args.get_u64("dedup", 0) != 0;
  config.session.root_cause.max_depth =
      static_cast<std::size_t>(args.get_u64("root-cause-depth", 3));
  config.catalog = &catalog;
  config.root_cause_history =
      static_cast<std::size_t>(args.get_u64("root-cause-history", 8));
  // Ops-drill knob: slow every event down so a tiny queue saturates
  // deterministically and the watchdog/alert plane can be exercised.
  config.debug_event_delay_us =
      static_cast<std::uint32_t>(args.get_u64("debug-event-delay-us", 0));

  // Observability: the serve registry is the process-global one so mining
  // metrics from a colocated retrain land in the same snapshot stream.
  config.registry = &obs::Registry::global();
  const std::string trace_out = args.get("trace-out", "");
  config.trace_sample_every = static_cast<std::size_t>(
      args.get_u64("trace-sample", trace_out.empty() ? 0 : 1000));
  if (!trace_out.empty()) obs::Tracer::global().set_enabled(true);

  // Fleet model sharing: the loaded model becomes the "default" template
  // so every tenant — boot-time --tenants and add_tenant control verbs
  // with {"template": "default"} — reads one skeleton and base CPT
  // payload through a per-tenant copy-on-write delta.
  // --share-templates 0 is the escape hatch: every instantiation is a
  // full private copy (alarms are bit-identical either way). The
  // registry outlives the service (declared first, destroyed last).
  serve::TemplateRegistry templates;
  config.templates = &templates;
  config.share_templates = args.get_u64("share-templates", 1) != 0;
  const double threshold = args.get_double("threshold", 0.99);
  const double laplace = args.get_double("laplace", 0.1);
  const auto default_template = templates.publish(
      "default", graph.value(), threshold, laplace, /*version=*/1);
  auto snapshot =
      config.share_templates
          ? serve::instantiate(*default_template)
          : serve::make_snapshot(std::move(graph).value(), threshold,
                                 laplace, /*version=*/1);

  // Alarms stream out as provenance-enriched JSONL; stdout is shared by
  // worker threads and the metrics streamer.
  std::mutex out_mutex;
  serve::DetectionService service(
      config, [&](const serve::ServedAlarm& alarm) {
        const std::string line = serve::alarm_to_json(alarm, catalog);
        std::lock_guard<std::mutex> lock(out_mutex);
        std::printf("%s\n", line.c_str());
      });

  // --metrics-interval N streams one registry snapshot line every N
  // seconds; --metrics-out routes those lines to a dedicated file so the
  // alarm JSONL on stdout stays machine-parseable without filtering.
  const auto metrics_interval = args.get_u64("metrics-interval", 0);
  const std::string metrics_out = args.get("metrics-out", "");
  std::ofstream metrics_file;
  if (!metrics_out.empty()) {
    metrics_file.open(metrics_out, std::ios::binary);
    if (!metrics_file.good()) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  std::atomic<bool> metrics_stop{false};
  std::thread metrics_thread;
  const auto emit_metrics = [&] {
    const std::string snapshot = service.registry_json();
    // Both clocks, so offline trend analysis can align snapshots with
    // alarm timestamps (wall) and with span traces (monotonic).
    const auto ts_unix_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    const std::string header = util::format(
        "{\"type\": \"metrics\", \"ts_unix_ms\": %lld, "
        "\"ts_mono_ns\": %llu, ",
        static_cast<long long>(ts_unix_ms),
        static_cast<unsigned long long>(obs::Tracer::now_ns()));
    // registry_json() yields {"metrics": [...]}; tag the stream record.
    std::lock_guard<std::mutex> lock(out_mutex);
    if (metrics_file.is_open()) {
      metrics_file << header << (snapshot.c_str() + 1) << "\n";
      metrics_file.flush();
    } else {
      std::printf("%s%s\n", header.c_str(), snapshot.c_str() + 1);
    }
  };
  if (metrics_interval > 0) {
    metrics_thread = std::thread([&] {
      const auto interval = std::chrono::seconds(metrics_interval);
      auto next = std::chrono::steady_clock::now() + interval;
      while (!metrics_stop.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() >= next) {
          emit_metrics();
          next += interval;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  const auto tenant_count =
      static_cast<std::size_t>(args.get_u64("tenants", 4));
  std::vector<serve::TenantHandle> tenants;
  for (std::size_t i = 0; i < tenant_count; ++i) {
    tenants.push_back(service.add_tenant(
        "home-" + std::to_string(i), snapshot,
        std::vector<std::uint8_t>(catalog.size(), 0)));
  }

  // The retention + alerting plane: a background sampler snapshots the
  // registry every --history-interval MS into ring buffers (served as
  // /metrics/history), the watchdog turns shard progress into
  // serve_watchdog_* gauges, and the alert engine evaluates its rules
  // on every tick (served as /alertz). --history-interval 0 keeps the
  // endpoints but never samples. Declared before the HTTP listeners so
  // the servers (whose handlers read these) are destroyed first.
  const std::uint64_t history_interval_ms =
      args.get_u64("history-interval", 1000);
  const auto history_capacity =
      static_cast<std::size_t>(args.get_u64("history-capacity", 512));
  if (history_capacity < 2) {
    std::fprintf(stderr, "--history-capacity must be >= 2\n");
    return 2;
  }
  serve::Watchdog watchdog(service);
  obs::TimeSeriesConfig history_config;
  history_config.interval_ms = history_interval_ms;
  history_config.raw_capacity = history_capacity;
  history_config.agg_capacity = history_capacity;
  obs::TimeSeriesStore history(service.registry(), history_config);
  std::vector<obs::AlertRule> alert_rules = watchdog.default_rules();
  const std::string rules_path = args.get("alert-rules", "");
  if (!rules_path.empty()) {
    std::ifstream rules_file(rules_path, std::ios::binary);
    if (!rules_file.good()) {
      std::fprintf(stderr, "cannot read %s\n", rules_path.c_str());
      return 1;
    }
    std::string rules_text{std::istreambuf_iterator<char>(rules_file),
                           std::istreambuf_iterator<char>()};
    auto parsed = obs::parse_alert_rules(rules_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
      return 2;
    }
    alert_rules = std::move(parsed).value();
  }
  obs::AlertEngine alerts(history, service.registry(),
                          std::move(alert_rules));
  history.set_pre_sample([&service, &watchdog](std::uint64_t now_ns) {
    service.refresh_gauges();
    watchdog.refresh(now_ns);
  });
  history.set_post_sample(
      [&alerts](std::uint64_t now_ns) { alerts.evaluate(now_ns); });

  serve::IntrospectionOptions introspection;
  introspection.history = &history;
  introspection.alerts = &alerts;
  introspection.watchdog = &watchdog;

  // --listen: the live scrape plane. Started after tenant registration
  // (the handlers walk the immutable tenant tables) and before
  // service.start(), so /readyz observably flips 503 -> 200.
  std::unique_ptr<obs::HttpServer> http = make_listener(args);
  if (http != nullptr) {
    serve::attach_introspection(*http, service, introspection);
    if (!start_listener(*http)) return 1;
  }

  service.start();
  if (history_interval_ms > 0) history.start();

  // The ingestion plane: stdin, raw-TCP JSONL (--ingest-port), and HTTP
  // POST /ingest (--ingest-http) all reduce to one shared IngestRouter,
  // so parsing, rejection accounting, and the tenant control verbs
  // behave identically no matter how an event arrives.
  serve::IngestConfig ingest_config;
  ingest_config.model = snapshot;
  ingest_config.initial_state = std::vector<std::uint8_t>(catalog.size(), 0);
  if (!tenants.empty()) ingest_config.default_tenant = "home-0";
  serve::IngestRouter router(service, catalog, std::move(ingest_config));

  std::unique_ptr<net::LineProtocolServer> line_server;
  if (ingest_tcp) {
    net::LineServerConfig line_config;
    line_config.socket.port =
        static_cast<std::uint16_t>(args.get_u64("ingest-port", 0));
    line_server = std::make_unique<net::LineProtocolServer>(
        line_config, [&router](std::string_view line) {
          return serve::IngestRouter::response_line(
              router.handle_line(line));
        });
    const auto port = line_server->start();
    if (!port.ok()) {
      std::fprintf(stderr, "cannot start ingest listener: %s\n",
                   port.error().to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "ingest listening on tcp://127.0.0.1:%u\n",
                 port.value());
  }
  std::unique_ptr<obs::HttpServer> ingest_http_server;
  if (ingest_http) {
    obs::HttpServerConfig http_config;
    http_config.port =
        static_cast<std::uint16_t>(args.get_u64("ingest-http", 0));
    http_config.registry = &service.registry();
    ingest_http_server = std::make_unique<obs::HttpServer>(http_config);
    serve::attach_ingest(*ingest_http_server, router);
    serve::attach_introspection(*ingest_http_server, service, introspection);
    const auto port = ingest_http_server->start();
    if (!port.ok()) {
      std::fprintf(stderr, "cannot start ingest-http listener: %s\n",
                   port.error().to_string().c_str());
      return 1;
    }
    std::fprintf(stderr, "ingest-http listening on http://127.0.0.1:%u\n",
                 port.value());
  }

  if (from_stdin) {
    // One JSON object per line:
    //   {"tenant": "home-0", "device": "pe_kitchen", "value": 1,
    //    "timestamp": 12.5}
    // Values are taken as already-binary (a deployment would persist the
    // training-time DiscretizationModel and discretize here). Lines
    // without a tenant route to the default tenant; rejections land in
    // serve_ingest_rejected_total{reason} like every other transport.
    std::string line;
    std::size_t line_number = 0, skipped = 0;
    while (std::getline(std::cin, line)) {
      ++line_number;
      const auto result = router.handle_line(line);
      switch (result.outcome) {
        case serve::IngestRouter::Outcome::kBlank:
        case serve::IngestRouter::Outcome::kAccepted:
        case serve::IngestRouter::Outcome::kControlOk:
          break;
        default:
          std::fprintf(stderr, "line %zu skipped: %s\n", line_number,
                       result.reason);
          ++skipped;
      }
    }
    if (skipped > 0) {
      std::fprintf(stderr, "-- %zu rejected lines skipped\n", skipped);
    }
  } else if (from_trace) {
    const auto log = load_trace(args);
    if (!log) return 1;
    preprocess::Preprocessor preprocessor;
    const preprocess::DiscretizationModel discretization =
        preprocess::DiscretizationModel::fit(*log);
    const auto events =
        preprocessor.discretize_runtime(*log, discretization, 0.0);
    serve::ReplayOptions replay;
    replay.speedup = args.get_double("speedup", 0.0);
    const serve::ReplayStats replayed =
        serve::replay_trace(service, tenants, events, replay);
    if (replayed.rejected > 0) {
      std::fprintf(stderr, "-- %zu submissions rejected by backpressure\n",
                   replayed.rejected);
    }
  } else {
    // Network-only: the sockets are the sole event source. Idle until
    // SIGINT/SIGTERM, then fall through to the graceful drain.
    std::signal(SIGINT, on_serve_signal);
    std::signal(SIGTERM, on_serve_signal);
    while (g_serve_interrupted == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "-- signal received, draining\n");
  }

  // Stop the ingestion listeners before draining the service: every
  // line already received is routed, then the queues flush. The history
  // sampler stops first — its hooks read shard progress and queue
  // gauges, which mean nothing mid-drain.
  history.stop();
  if (line_server != nullptr) line_server->stop();
  if (ingest_http_server != nullptr) ingest_http_server->stop();
  service.shutdown();
  if (metrics_thread.joinable()) {
    metrics_stop.store(true, std::memory_order_relaxed);
    metrics_thread.join();
  }
  if (metrics_interval > 0) emit_metrics();  // final snapshot, post-drain
  std::printf("%s\n", service.stats_json().c_str());

  const std::string prom_out = args.get("prom-out", "");
  if (!prom_out.empty() &&
      !write_text_file(prom_out, service.registry().to_prometheus())) {
    return 1;
  }
  if (!trace_out.empty() &&
      !write_text_file(trace_out,
                       obs::Tracer::global().export_chrome_json())) {
    return 1;
  }
  if (http != nullptr) http->stop();
  return 0;
}

int cmd_inspect(const Args& args) {
  if (!args.require("model")) return 2;
  auto profile = profile_by_name(args.get("profile", "contextact"));
  if (!profile) return 2;
  telemetry::DeviceCatalog catalog;
  for (const telemetry::DeviceInfo& info : profile->devices) {
    if (!catalog.add(info).ok()) return 1;
  }
  auto graph = graph::InteractionGraph::load(args.get("model", ""));
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 graph.error().to_string().c_str());
    return 1;
  }
  if (graph.value().device_count() != catalog.size()) {
    std::fprintf(stderr, "model/catalog device-count mismatch\n");
    return 1;
  }

  const graph::GraphSummary summary = graph::summarize(graph.value());
  std::printf("DIG: %zu devices, tau=%zu, %zu lagged edges, %zu "
              "device-level interactions (%zu self)\n",
              summary.device_count, graph.value().max_lag(),
              summary.edge_count, summary.interaction_count,
              summary.self_loop_count);
  std::printf("in-degree: max %zu, mean %.2f; %zu orphan devices; %zu CPT "
              "assignments\n",
              summary.max_in_degree, summary.mean_in_degree,
              summary.orphan_count, summary.cpt_assignment_count);
  for (telemetry::DeviceId child = 0; child < catalog.size(); ++child) {
    const auto& causes = graph.value().causes(child);
    if (causes.empty()) continue;
    std::printf("  %s <-", catalog.info(child).name.c_str());
    for (const graph::LaggedNode& cause : causes) {
      std::printf(" %s(t-%u)", catalog.info(cause.device).name.c_str(),
                  cause.lag);
    }
    std::printf("\n");
  }
  if (args.options.contains("dot")) {
    std::ofstream out(args.options.at("dot"));
    out << graph.value().to_dot(catalog);
    std::printf("DOT graph written to %s\n",
                args.options.at("dot").c_str());
  }
  return 0;
}

int cmd_eval(const Args& args) {
  auto profile = profile_by_name(args.get("profile", "contextact"));
  if (!profile) return 2;
  profile->days = args.get_double("days", 14.0);

  core::ExperimentConfig config;
  config.seed = args.get_u64("seed", 2023);
  std::printf("training: %s profile, %.0f days, seed %llu ...\n",
              args.get("profile", "contextact"), profile->days,
              static_cast<unsigned long long>(config.seed));
  const core::Experiment ex =
      core::build_experiment(std::move(*profile), config);
  std::printf("model: tau=%zu, %zu lagged edges, threshold=%.4f\n",
              ex.model.lag, ex.model.graph.edge_count(),
              ex.model.score_threshold);

  const double test_days = args.get_double("test-days", 10.0);
  const preprocess::StateSeries test =
      core::make_fresh_test_series(ex, test_days, config.seed ^ 0xABCDEF);
  inject::AnomalyInjector injector(ex.catalog(), ex.profile,
                                   ex.sim.ground_truth);

  const auto chains = args.get_u64("chains", 200);
  const auto k_max = static_cast<std::size_t>(args.get_u64("kmax", 3));
  struct CaseRow {
    inject::CollectiveCase anomaly_case;
    const char* name;
  };
  const CaseRow rows[] = {
      {inject::CollectiveCase::kBurglarWandering, "burglar-wandering"},
      {inject::CollectiveCase::kActuatorManipulation,
       "actuator-manipulation"},
      {inject::CollectiveCase::kChainedAutomation, "chained-automation"},
  };
  std::printf("\n%-22s %9s %9s %8s %8s %8s\n", "collective case",
              "detected", "tracked", "alarms", "hit@1", "hit@3");
  for (const CaseRow& row : rows) {
    inject::CollectiveConfig inject_config;
    inject_config.anomaly_case = row.anomaly_case;
    inject_config.chain_count = static_cast<std::size_t>(chains);
    inject_config.k_max = k_max;
    inject_config.seed = config.seed;
    const inject::InjectionResult stream = injector.inject_collective(
        test.events(), test.snapshot_state(0), inject_config);
    const core::CollectiveEvaluation collective =
        core::evaluate_collective(ex.model, stream, k_max);
    const core::LocalizationEvaluation localization =
        core::evaluate_localization(ex.model, stream, k_max);
    std::printf("%-22s %8.1f%% %8.1f%% %8zu %7.1f%% %7.1f%%\n", row.name,
                collective.detected_fraction() * 100.0,
                collective.tracked_fraction() * 100.0,
                collective.alarms_raised,
                localization.hit1_fraction() * 100.0,
                localization.hit3_fraction() * 100.0);
  }
  std::printf("\nhit@k: fraction of chain-overlapping alarms whose ranked "
              "root-cause list\nplaces the chain's true root (first injected "
              "device) at rank 1 / in the top 3.\n");
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: causaliot <command> [--option value ...]\n"
      "  (any command) [--simd scalar|avx2|avx512|neon — pin the CI "
      "counting kernel backend; default: runtime capability probe, or "
      "CAUSALIOT_SIMD env. All backends are bit-identical.]\n"
      "  simulate --out trace.csv [--profile contextact|casas] [--days N]"
      " [--seed N] [--format csv|jsonl]\n"
      "  train    --trace trace.csv --out model.dig [--profile P] [--tau N]"
      " [--alpha A] [--q Q] [--laplace L] [--threads N (0 = all cores)]"
      " [--ci-batch 0|1 (default 1: batched multi-subset CI counting)]"
      " [--trace-out trace.json] [--prom-out metrics.prom] [--verbose 1]"
      " [--listen PORT (0 = ephemeral; serves /metrics /healthz /readyz"
      " /statusz /tracez on loopback)]\n"
      "  monitor  --model model.dig --trace live.csv [--profile P]"
      " [--kmax K] [--threshold C] [--root-cause-depth D (causal walk"
      " depth for the printed attribution; default 3)]\n"
      "  serve    --model model.dig (--trace live.csv | --stdin 1 |"
      " --ingest-port PORT | --ingest-http PORT; network-only runs until"
      " SIGINT/SIGTERM)\n"
      "           [--ingest-port PORT (raw-TCP JSONL lines + control verbs;"
      " 0 = ephemeral, announced on stderr)]\n"
      "           [--ingest-http PORT (POST /ingest JSONL batches,"
      " POST/DELETE /tenants, plus the introspection routes)]\n"
      " [--profile P] [--tenants N] [--shards N] [--queue N]"
      " [--policy block|drop|reject] [--speedup X (0 = max)] [--kmax K]"
      " [--threshold C] [--dedup 0|1] [--metrics-interval SECS]"
      " [--metrics-out snapshots.jsonl] [--prom-out metrics.prom]"
      " [--trace-out trace.json] [--trace-sample N (span every Nth event)]"
      " [--listen PORT (0 = ephemeral; serves /metrics /healthz /readyz"
      " /statusz /tracez /alertz /rootcausez /metrics/history on"
      " loopback)]\n"
      "           [--alert-rules FILE (JSONL alert rules; default: the"
      " built-in watchdog ruleset)]\n"
      "           [--history-interval MS (metric retention sampler tick;"
      " default 1000, 0 = off)] [--history-capacity N (ring points per"
      " series; default 512)]\n"
      "           [--debug-event-delay-us N (slow workers for ops drills;"
      " default 0)]\n"
      "           [--root-cause-depth D (alarm attribution walk depth;"
      " default 3)] [--root-cause-history K (recent attributions kept per"
      " tenant for /rootcausez; default 8)]\n"
      "           [--share-templates 0|1 (default 1: tenants share the"
      " model skeleton + base CPTs copy-on-write; 0 deep-copies per"
      " tenant. Alarms are bit-identical either way; dedup shows in"
      " serve_model_* gauges and /statusz \"models\")]\n"
      "  eval     [--profile P] [--days N (train-sim days; default 14)]"
      " [--test-days N (held-out days; default 10)] [--chains N (injected"
      " chains per case; default 200)] [--kmax K] [--seed N]\n"
      "           trains a model, injects the three collective cases, and"
      " reports detection plus root-cause hit@1/hit@3\n"
      "  inspect  --model model.dig [--profile P] [--dot out.dot]\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kWarn);
  const auto args = parse_args(argc, argv);
  if (!args) {
    usage();
    return 2;
  }
  if (!apply_simd_flag(*args)) return 2;
  if (args->command == "simulate") return cmd_simulate(*args);
  if (args->command == "train") return cmd_train(*args);
  if (args->command == "monitor") return cmd_monitor(*args);
  if (args->command == "serve") return cmd_serve(*args);
  if (args->command == "inspect") return cmd_inspect(*args);
  if (args->command == "eval") return cmd_eval(*args);
  usage();
  return 2;
}
