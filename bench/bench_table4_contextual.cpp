// Reproduces Table IV: contextual anomaly detection accuracy for the four
// malicious cases (sensor fault, burglar intrusion, remote control,
// malicious automation rule).
//
// Paper reference (ContextAct): accuracy 0.972-0.989, precision
// 0.943-0.964, recall 0.960-0.984, average 95.2% P / 96.8% R.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::print_header("Table IV — contextual anomaly detection", seed);

  core::Experiment ex = bench::contextact_experiment(seed);
  // Independent held-out stream, long enough for the paper's campaign
  // sizes (5,000 injection positions / 1,000 chains).
  const preprocess::StateSeries test =
      core::make_fresh_test_series(ex, /*days=*/35.0, seed ^ 0xABCDEF);
  inject::AnomalyInjector injector(ex.catalog(), ex.profile,
                                   ex.sim.ground_truth);

  struct Row {
    inject::ContextualCase anomaly_case;
    const char* description;
  };
  const Row rows[] = {
      {inject::ContextualCase::kSensorFault, "Fluctuating brightness level"},
      {inject::ContextualCase::kBurglarIntrusion,
       "Suspicious presence report"},
      {inject::ContextualCase::kRemoteControl, "Ghost actuator operation"},
      {inject::ContextualCase::kMaliciousRule, "Execution of hidden rules"},
  };

  std::printf("%-4s %-30s %9s %9s %9s %9s %9s\n", "ID", "Anomaly", "Injected",
              "Accuracy", "Precision", "Recall", "F1");
  bench::print_rule();
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    inject::ContextualConfig config;
    config.anomaly_case = rows[i].anomaly_case;
    config.injection_count = 5000;
    config.seed = seed + 17 * (i + 1);
    const inject::InjectionResult stream = injector.inject_contextual(
        test.events(), test.snapshot_state(0), config);
    const stats::ConfusionCounts counts =
        core::evaluate_contextual(ex.model, stream);
    precision_sum += counts.precision();
    recall_sum += counts.recall();
    std::printf("%-4zu %-30s %9zu %9.3f %9.3f %9.3f %9.3f\n", i + 1,
                rows[i].description, stream.injected_count, counts.accuracy(),
                counts.precision(), counts.recall(), counts.f1());
  }
  bench::print_rule();
  std::printf("average precision %.3f recall %.3f   (paper: 0.952 / 0.968)\n",
              precision_sum / std::size(rows), recall_sum / std::size(rows));
  return 0;
}
