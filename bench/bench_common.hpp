// Shared wiring for the reproduction benches: every bench binary builds
// the same trained experiment (deterministic seed) and prints aligned
// table rows so the output can be diffed against the paper's tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "causaliot/core/evaluation.hpp"
#include "causaliot/core/experiment.hpp"
#include "causaliot/util/log.hpp"

namespace causaliot::bench {

inline constexpr std::uint64_t kDefaultSeed = 2023;

/// Seed from argv[1] (all benches accept one) or the default.
inline std::uint64_t seed_from_args(int argc, char** argv) {
  return argc > 1 ? std::strtoull(argv[1], nullptr, 10) : kDefaultSeed;
}

/// The paper's evaluation configuration: tau = 2, alpha = 0.001, q = 99.
inline core::ExperimentConfig paper_config(std::uint64_t seed) {
  core::ExperimentConfig config;
  config.seed = seed;
  return config;
}

/// Builds the standard ContextAct experiment used by most benches.
/// The detection benches simulate four weeks of the 7-day profile so the
/// 20% held-out stream is long enough for the paper's 5,000-position
/// injection campaigns (see EXPERIMENTS.md for the substitution note).
inline core::Experiment contextact_experiment(std::uint64_t seed,
                                              double days = 28.0) {
  sim::HomeProfile profile = sim::contextact_profile();
  profile.days = days;
  return core::build_experiment(std::move(profile), paper_config(seed));
}

inline void print_header(const char* title, std::uint64_t seed) {
  std::printf("\n================================================================\n");
  std::printf("%s   (seed %llu)\n", title,
              static_cast<unsigned long long>(seed));
  std::printf("================================================================\n");
}

inline void print_rule(char c = '-') {
  for (int i = 0; i < 64; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace causaliot::bench
