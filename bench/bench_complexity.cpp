// §V-D computational-complexity benchmarks (google-benchmark):
//   * TemporalPC mining cost vs device count n (the paper argues O(n^k)
//     conditional-independence tests with small realistic k),
//   * Event Monitor per-event validation cost (argued O(1)),
//   * the G-square test primitive itself.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>

#include "causaliot/core/pipeline.hpp"
#include "causaliot/stats/batch_ci.hpp"
#include "causaliot/detect/monitor.hpp"
#include "causaliot/mining/temporal_pc.hpp"
#include "causaliot/obs/trace.hpp"
#include "causaliot/preprocess/series.hpp"
#include "causaliot/stats/gsquare.hpp"
#include "causaliot/stats/simd_backend.hpp"
#include "causaliot/util/rng.hpp"
#include "causaliot/util/thread_pool.hpp"

namespace {

using namespace causaliot;

// A synthetic home: each device flips driven by its predecessor (a chain
// of interactions) plus noise — enough structure for TemporalPC to prune.
preprocess::StateSeries synthetic_series(std::size_t device_count,
                                         std::size_t event_count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> state(device_count, 0);
  preprocess::StateSeries series(device_count, state);
  telemetry::DeviceId last = 0;
  for (std::size_t j = 0; j < event_count; ++j) {
    telemetry::DeviceId device;
    if (rng.bernoulli(0.6)) {
      device = (last + 1) % static_cast<telemetry::DeviceId>(device_count);
    } else {
      device = static_cast<telemetry::DeviceId>(rng.uniform(device_count));
    }
    state[device] ^= 1;
    series.apply({device, state[device], static_cast<double>(j)});
    last = device;
  }
  return series;
}

void BM_TemporalPCMining(benchmark::State& bench_state) {
  const auto device_count =
      static_cast<std::size_t>(bench_state.range(0));
  const preprocess::StateSeries series =
      synthetic_series(device_count, 4000, 42);
  mining::MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  const mining::InteractionMiner miner(config);
  std::size_t tests = 0;
  for (auto _ : bench_state) {
    mining::MiningDiagnostics diagnostics;
    graph::InteractionGraph graph = miner.mine(series, &diagnostics);
    benchmark::DoNotOptimize(graph.edge_count());
    tests = diagnostics.tests_run;
  }
  bench_state.counters["ci_tests"] = static_cast<double>(tests);
  bench_state.counters["devices"] = static_cast<double>(device_count);
}
BENCHMARK(BM_TemporalPCMining)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(22)
    ->Unit(benchmark::kMillisecond);

// Thread-count sweep at the ContextAct scale (n = 22 devices): per-child
// discovery fans out over a reusable pool (hoisted out of the timed loop,
// as a long-running service would hold it). The result is bit-identical
// to the serial run at every thread count.
void BM_TemporalPCMiningThreads(benchmark::State& bench_state) {
  const auto threads = static_cast<std::size_t>(bench_state.range(0));
  const std::size_t device_count = 22;
  const preprocess::StateSeries series =
      synthetic_series(device_count, 4000, 42);
  mining::MinerConfig config;
  config.max_lag = 2;
  config.alpha = 0.001;
  const mining::InteractionMiner miner(config);
  util::ThreadPool pool(threads);
  std::size_t edges = 0;
  for (auto _ : bench_state) {
    graph::InteractionGraph graph =
        miner.mine(series, nullptr, threads > 1 ? &pool : nullptr);
    edges = graph.edge_count();
    benchmark::DoNotOptimize(edges);
  }
  bench_state.counters["threads"] = static_cast<double>(threads);
  bench_state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_TemporalPCMiningThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MonitorPerEvent(benchmark::State& bench_state) {
  const std::size_t device_count = 22;
  const preprocess::StateSeries series =
      synthetic_series(device_count, 8000, 7);
  mining::MinerConfig config;
  config.max_lag = 2;
  const mining::InteractionMiner miner(config);
  const graph::InteractionGraph graph = miner.mine(series);

  detect::MonitorConfig monitor_config;
  monitor_config.score_threshold = 0.99;
  detect::EventMonitor monitor(graph, monitor_config,
                               series.snapshot_state(0));
  util::Rng rng(99);
  std::size_t processed = 0;
  for (auto _ : bench_state) {
    const auto device =
        static_cast<telemetry::DeviceId>(rng.uniform(device_count));
    const preprocess::BinaryEvent event{
        device, static_cast<std::uint8_t>(rng.uniform(2)),
        static_cast<double>(processed)};
    benchmark::DoNotOptimize(monitor.process(event));
    ++processed;
  }
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(processed));
}
BENCHMARK(BM_MonitorPerEvent);

void BM_GSquareTest(benchmark::State& bench_state) {
  const auto sample_count = static_cast<std::size_t>(bench_state.range(0));
  const auto conditioning = static_cast<std::size_t>(bench_state.range(1));
  util::Rng rng(5);
  std::vector<std::uint8_t> x(sample_count);
  std::vector<std::uint8_t> y(sample_count);
  std::vector<std::vector<std::uint8_t>> z(conditioning,
                                           std::vector<std::uint8_t>(
                                               sample_count));
  for (std::size_t i = 0; i < sample_count; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    y[i] = static_cast<std::uint8_t>((x[i] + rng.uniform(2)) % 2);
    for (auto& column : z) {
      column[i] = static_cast<std::uint8_t>(rng.uniform(2));
    }
  }
  std::vector<std::span<const std::uint8_t>> z_spans(z.begin(), z.end());
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(
        stats::g_square_test(x, y, z_spans));
  }
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations()) *
      static_cast<std::int64_t>(sample_count));
}
BENCHMARK(BM_GSquareTest)
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({100000, 2});

// The miner's actual hot path: packed columns + reused scratch.
void BM_GSquareTestPacked(benchmark::State& bench_state) {
  const auto sample_count = static_cast<std::size_t>(bench_state.range(0));
  const auto conditioning = static_cast<std::size_t>(bench_state.range(1));
  util::Rng rng(5);
  std::vector<std::uint8_t> x(sample_count);
  std::vector<std::uint8_t> y(sample_count);
  std::vector<std::vector<std::uint8_t>> z(conditioning,
                                           std::vector<std::uint8_t>(
                                               sample_count));
  for (std::size_t i = 0; i < sample_count; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    y[i] = static_cast<std::uint8_t>((x[i] + rng.uniform(2)) % 2);
    for (auto& column : z) {
      column[i] = static_cast<std::uint8_t>(rng.uniform(2));
    }
  }
  const stats::PackedColumn px{std::span<const std::uint8_t>(x)};
  const stats::PackedColumn py{std::span<const std::uint8_t>(y)};
  std::vector<stats::PackedColumn> pz;
  for (const auto& column : z) {
    pz.emplace_back(std::span<const std::uint8_t>(column));
  }
  std::vector<const stats::PackedColumn*> z_ptrs;
  for (const auto& column : pz) z_ptrs.push_back(&column);
  stats::CiTestContext context;
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(
        stats::g_square_test(px, py, z_ptrs, {}, context));
  }
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations()) *
      static_cast<std::int64_t>(sample_count));
}
BENCHMARK(BM_GSquareTestPacked)
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({100000, 2});

// The miner's level-l workload in isolation: one child column y, a pool
// of candidate parents, and every (x, Z) test the level would run —
// Z drawn as all |l|-subsets of the first kCiPoolSize candidates.
// BM_BatchedCI pays the full batched cost each iteration (fresh context,
// marginal sweep, cold memo) so the comparison against BM_PerSubsetCI is
// honest about setup overhead, not just warm-cache lookups.
constexpr std::size_t kCiPoolSize = 16;

template <typename TestFn>
std::size_t run_ci_level_sweep(std::size_t level, TestFn&& run_test) {
  std::size_t tests = 0;
  for (std::size_t x = 0; x < kCiPoolSize; ++x) {
    std::vector<std::size_t> others;
    for (std::size_t c = 0; c < kCiPoolSize; ++c) {
      if (c != x) others.push_back(c);
    }
    std::vector<bool> take(others.size(), false);
    std::fill(take.begin(), take.begin() + static_cast<long>(level), true);
    do {
      std::vector<std::size_t> z;
      for (std::size_t i = 0; i < others.size(); ++i) {
        if (take[i]) z.push_back(others[i]);
      }
      run_test(x, z);
      ++tests;
    } while (std::prev_permutation(take.begin(), take.end()));
  }
  return tests;
}

// Candidate columns shaped like the miner's: lagged views of a synthetic
// home, packed once (the miner's ColumnCache does the same).
struct CiBenchFixture {
  preprocess::StateSeries series;
  std::vector<stats::PackedColumn> packed;  // [0] = y, [1..] = candidates

  explicit CiBenchFixture(std::size_t candidate_count,
                          std::size_t event_count = 4000)
      : series(synthetic_series(candidate_count / 2 + 1, event_count, 42)) {
    packed.emplace_back(series.lagged_column(0, 0, 2));
    for (std::size_t i = 0; i < candidate_count; ++i) {
      packed.emplace_back(series.lagged_column(
          static_cast<telemetry::DeviceId>(i % series.device_count()),
          1 + i / series.device_count(), 2));
    }
  }
};

void run_batched_ci(benchmark::State& bench_state,
                    const CiBenchFixture& fixture, std::size_t level) {
  std::size_t tests = 0;
  for (auto _ : bench_state) {
    stats::BatchCiContext batch(
        {fixture.packed.data(), fixture.packed.size()}, 0);
    std::vector<stats::ColumnId> all;
    for (std::size_t c = 1; c <= kCiPoolSize; ++c) {
      all.push_back(static_cast<stats::ColumnId>(c));
    }
    batch.prepare_marginals(all);
    tests = run_ci_level_sweep(
        level, [&](std::size_t x, const std::vector<std::size_t>& z) {
          std::vector<stats::ColumnId> z_ids;
          for (const std::size_t c : z) {
            z_ids.push_back(static_cast<stats::ColumnId>(c + 1));
          }
          benchmark::DoNotOptimize(stats::g_square_test(
              batch, static_cast<stats::ColumnId>(x + 1), z_ids, {}));
        });
  }
  bench_state.counters["ci_tests"] = static_cast<double>(tests);
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations()) *
      static_cast<std::int64_t>(tests));
}

void run_per_subset_ci(benchmark::State& bench_state,
                       const CiBenchFixture& fixture, std::size_t level) {
  stats::CiTestContext context;
  std::size_t tests = 0;
  for (auto _ : bench_state) {
    tests = run_ci_level_sweep(
        level, [&](std::size_t x, const std::vector<std::size_t>& z) {
          std::vector<const stats::PackedColumn*> z_ptrs;
          for (const std::size_t c : z) {
            z_ptrs.push_back(&fixture.packed[c + 1]);
          }
          benchmark::DoNotOptimize(stats::g_square_test(
              fixture.packed[x + 1], fixture.packed[0], z_ptrs, {}, context));
        });
  }
  bench_state.counters["ci_tests"] = static_cast<double>(tests);
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations()) *
      static_cast<std::int64_t>(tests));
}

void BM_BatchedCI(benchmark::State& bench_state) {
  const CiBenchFixture fixture(kCiPoolSize);
  run_batched_ci(bench_state, fixture,
                 static_cast<std::size_t>(bench_state.range(0)));
}
BENCHMARK(BM_BatchedCI)->Arg(0)->Arg(1)->Arg(2);

void BM_PerSubsetCI(benchmark::State& bench_state) {
  const CiBenchFixture fixture(kCiPoolSize);
  run_per_subset_ci(bench_state, fixture,
                    static_cast<std::size_t>(bench_state.range(0)));
}
BENCHMARK(BM_PerSubsetCI)->Arg(0)->Arg(1)->Arg(2);

// SIMD backend comparison: the same CI workloads, pinned to one kernel
// backend and scaled up (64K samples = 1024 packed words per column) so
// the word-loop passes dominate over the per-test statistic arithmetic —
// the regime PR 6 targets (long traces, continual re-mining). Registered
// dynamically in main() once per backend the probe admits on this host;
// cross-name ratios (e.g. BM_BatchedCI_simd_avx512 vs _scalar) are the
// acceptance measurement for the ≥1.5× wide-vs-scalar criterion.
constexpr std::size_t kSimdBenchEvents = 65536;

// Pins a backend for one benchmark run and restores the startup choice
// after. Safe mid-process: every backend is bit-identical, so switching
// changes throughput only, never counts.
class ForcedBackend {
 public:
  explicit ForcedBackend(stats::simd::Backend backend)
      : previous_(stats::simd::chosen()) {
    stats::simd::force_backend(backend);
  }
  ~ForcedBackend() { stats::simd::force_backend(previous_); }
  ForcedBackend(const ForcedBackend&) = delete;
  ForcedBackend& operator=(const ForcedBackend&) = delete;

 private:
  stats::simd::Backend previous_;
};

void BM_BatchedCISimd(benchmark::State& bench_state,
                      stats::simd::Backend backend) {
  const ForcedBackend forced(backend);
  const CiBenchFixture fixture(kCiPoolSize, kSimdBenchEvents);
  run_batched_ci(bench_state, fixture,
                 static_cast<std::size_t>(bench_state.range(0)));
}

// Per-subset only rides the SIMD kernels at level 0 (deeper levels walk
// the key-extraction stratum loop), so the SIMD variant pins level 0.
void BM_PerSubsetCISimd(benchmark::State& bench_state,
                        stats::simd::Backend backend) {
  const ForcedBackend forced(backend);
  const CiBenchFixture fixture(kCiPoolSize, kSimdBenchEvents);
  run_per_subset_ci(bench_state, fixture, 0);
}

void register_simd_benchmarks() {
  for (const stats::simd::Backend backend :
       stats::simd::available_backends()) {
    const std::string name(stats::simd::backend_name(backend));
    benchmark::RegisterBenchmark(("BM_BatchedCI_simd_" + name).c_str(),
                                 BM_BatchedCISimd, backend)
        ->Arg(0)
        ->Arg(2);
    benchmark::RegisterBenchmark(("BM_PerSubsetCI_simd_" + name).c_str(),
                                 BM_PerSubsetCISimd, backend);
  }
}

// Full training pass with span tracing on: the per-stage counters are the
// tracer's aggregated span totals divided by iteration count, so
// BENCH_mining.json records where training time goes (mine vs CPT vs
// threshold calibration) alongside the end-to-end rate.
void BM_TrainStages(benchmark::State& bench_state) {
  const std::size_t device_count = 16;
  const preprocess::StateSeries series =
      synthetic_series(device_count, 4000, 42);
  core::PipelineConfig config;
  config.alpha = 0.001;
  config.laplace_alpha = 0.1;
  const core::Pipeline pipeline(config);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.reset();
  tracer.set_enabled(true);
  for (auto _ : bench_state) {
    const core::TrainedModel model = pipeline.train_on_series(series, 2);
    benchmark::DoNotOptimize(model.score_threshold);
  }
  tracer.set_enabled(false);

  const auto totals = tracer.stage_totals();
  const auto per_iter = [&](const char* stage) {
    const auto it = totals.find(stage);
    return it == totals.end()
               ? 0.0
               : static_cast<double>(it->second.total_ns) /
                     static_cast<double>(bench_state.iterations());
  };
  bench_state.counters["mine_ns"] = per_iter("train.mine");
  bench_state.counters["cpt_ns"] = per_iter("mine.cpt");
  bench_state.counters["threshold_ns"] = per_iter("train.threshold");
  bench_state.counters["tpc_level_ns"] = per_iter("tpc.level");
  tracer.reset();
}
BENCHMARK(BM_TrainStages)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN():
//   * --causaliot-simd-list prints one backend name per line and exits
//     (run_bench.sh / CI use it to enumerate forcible backends),
//   * the chosen SIMD backend is stamped into the benchmark context so
//     BENCH_mining.json carries kernel provenance,
//   * the per-backend CI benchmarks are registered for whatever the
//     capability probe admits on this host.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--causaliot-simd-list") {
      for (const auto backend : causaliot::stats::simd::available_backends()) {
        std::printf("%s\n",
                    std::string(
                        causaliot::stats::simd::backend_name(backend))
                        .c_str());
      }
      return 0;
    }
  }
  benchmark::AddCustomContext(
      "simd_backend",
      std::string(causaliot::stats::simd::backend_name(
          causaliot::stats::simd::chosen())));
  register_simd_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
