// Ingestion-plane soak benchmarks (google-benchmark): events/sec from
// raw TCP JSONL bytes on a loopback socket all the way through
// net::LineProtocolServer -> serve::IngestRouter -> shard queues ->
// Algorithm 2, with a clean-drain conservation check every iteration:
// submitted - rejected == processed + orphaned, nothing lost or
// duplicated. BM_ScanIngestLine isolates the parse floor; the soak
// numbers land in BENCH_serving.json via tools/run_bench.sh.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "causaliot/core/pipeline.hpp"
#include "causaliot/net/line_server.hpp"
#include "causaliot/serve/ingest.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/util/check.hpp"
#include "causaliot/util/rng.hpp"

namespace {

using namespace causaliot;

constexpr std::size_t kDevices = 22;

preprocess::StateSeries synthetic_series(std::size_t device_count,
                                         std::size_t event_count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> state(device_count, 0);
  preprocess::StateSeries series(device_count, state);
  telemetry::DeviceId last = 0;
  for (std::size_t j = 0; j < event_count; ++j) {
    telemetry::DeviceId device;
    if (rng.bernoulli(0.6)) {
      device = (last + 1) % static_cast<telemetry::DeviceId>(device_count);
    } else {
      device = static_cast<telemetry::DeviceId>(rng.uniform(device_count));
    }
    state[device] ^= 1;
    series.apply({device, state[device], static_cast<double>(j)});
    last = device;
  }
  return series;
}

struct IngestFixture {
  core::TrainedModel model;
  std::vector<preprocess::BinaryEvent> events;
  std::vector<std::uint8_t> initial_state;
  telemetry::DeviceCatalog catalog;
};

const IngestFixture& fixture() {
  static const IngestFixture data = [] {
    IngestFixture out;
    const preprocess::StateSeries series =
        synthetic_series(kDevices, 20000, 42);
    core::PipelineConfig config;
    config.laplace_alpha = 0.1;
    out.model = core::Pipeline(config).train_on_series(series, 2);
    out.events = series.events();
    out.initial_state = series.snapshot_state(0);
    for (std::size_t i = 0; i < kDevices; ++i) {
      telemetry::DeviceInfo info;
      info.name = "dev_" + std::to_string(i);
      info.room = "bench";
      CAUSALIOT_CHECK(out.catalog.add(std::move(info)).ok());
    }
    return out;
  }();
  return data;
}

/// Pre-rendered JSONL chunk: `lines` events round-robin over `tenants`
/// tenant names ("t0".."tN-1"), cycling the fixture event stream.
std::string render_lines(std::size_t lines, std::size_t tenants,
                         std::size_t phase) {
  const IngestFixture& data = fixture();
  std::string out;
  out.reserve(lines * 80);
  for (std::size_t i = 0; i < lines; ++i) {
    const auto& event = data.events[(phase + i) % data.events.size()];
    out += "{\"tenant\": \"t" + std::to_string(i % tenants) +
           "\", \"device\": \"dev_" + std::to_string(event.device) +
           "\", \"value\": " + std::to_string(static_cast<int>(event.state)) +
           ", \"timestamp\": " + std::to_string(event.timestamp) + "}\n";
  }
  return out;
}

/// Streams `payload` to the port in large writes; returns false on any
/// socket failure.
bool stream_payload(std::uint16_t port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return false;
  }
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t wrote = ::send(fd, payload.data() + sent,
                                 payload.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  ::shutdown(fd, SHUT_WR);
  // Wait for the server-side EOF so every line is routed before return.
  char buffer[4096];
  while (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
  }
  ::close(fd);
  return true;
}

/// The parse floor: the flat scanner over pre-rendered lines, no
/// sockets, no service.
void BM_ScanIngestLine(benchmark::State& state) {
  const std::string payload = render_lines(4096, 4, 0);
  std::vector<std::string_view> lines;
  std::string_view rest = payload;
  std::size_t newline;
  while ((newline = rest.find('\n')) != std::string_view::npos) {
    lines.push_back(rest.substr(0, newline));
    rest = rest.substr(newline + 1);
  }
  std::size_t parsed = 0;
  for (auto _ : state) {
    for (const std::string_view line : lines) {
      serve::IngestFields fields;
      parsed += serve::scan_ingest_line(line, fields) ? 1 : 0;
      benchmark::DoNotOptimize(fields);
    }
  }
  CAUSALIOT_CHECK(parsed == state.iterations() * lines.size());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * lines.size()));
}
BENCHMARK(BM_ScanIngestLine);

/// Full plane: loopback TCP JSONL into a running multi-shard service.
/// One complete lifetime per iteration, clean drain checked exactly.
void BM_IngestTcpSoak(benchmark::State& state) {
  const auto shard_count = static_cast<std::size_t>(state.range(0));
  const auto tenant_count = static_cast<std::size_t>(state.range(1));
  const auto client_count = static_cast<std::size_t>(state.range(2));
  constexpr std::size_t kLinesPerClient = 50000;
  const IngestFixture& data = fixture();

  std::vector<std::string> payloads;
  for (std::size_t c = 0; c < client_count; ++c) {
    payloads.push_back(
        render_lines(kLinesPerClient, tenant_count, c * 1327));
  }

  std::uint64_t alarms = 0;
  for (auto _ : state) {
    serve::ServiceConfig config;
    config.shard_count = shard_count;
    config.queue_capacity = 8192;
    config.overflow = util::OverflowPolicy::kBlock;  // lossless soak
    serve::DetectionService service(config, nullptr);
    auto snapshot =
        serve::make_snapshot(data.model.graph, data.model.score_threshold,
                             data.model.laplace_alpha, 1);
    for (std::size_t i = 0; i < tenant_count; ++i) {
      service.add_tenant("t" + std::to_string(i), snapshot,
                         data.initial_state);
    }
    serve::IngestConfig ingest_config;
    serve::IngestRouter router(service, data.catalog,
                               std::move(ingest_config));
    net::LineServerConfig line_config;
    line_config.socket.worker_count = client_count;  // one per connection
    net::LineProtocolServer tcp(
        line_config, [&router](std::string_view line) {
          return serve::IngestRouter::response_line(
              router.handle_line(line));
        });
    service.start();
    const auto port = tcp.start();
    CAUSALIOT_CHECK(port.ok());

    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < client_count; ++c) {
      clients.emplace_back([&, c] {
        CAUSALIOT_CHECK(stream_payload(port.value(), payloads[c]));
      });
    }
    for (auto& client : clients) client.join();
    tcp.stop();
    service.shutdown();

    // Clean drain: every line that reached the router was accepted, and
    // every accepted event was processed — zero lost, zero duplicated.
    const serve::ServiceStats stats = service.stats();
    const std::uint64_t sent = client_count * kLinesPerClient;
    CAUSALIOT_CHECK(router.lines_total() == sent);
    CAUSALIOT_CHECK(router.accepted_total() == sent);
    CAUSALIOT_CHECK(stats.events_submitted ==
                    stats.events_processed + stats.events_orphaned);
    CAUSALIOT_CHECK(stats.events_processed == sent);
    CAUSALIOT_CHECK(tcp.stats().lines_total == sent);
    alarms = stats.alarms_total;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * client_count * kLinesPerClient));
  state.counters["shards"] = static_cast<double>(shard_count);
  state.counters["tenants"] = static_cast<double>(tenant_count);
  state.counters["clients"] = static_cast<double>(client_count);
  state.counters["alarms"] = static_cast<double>(alarms);
}
BENCHMARK(BM_IngestTcpSoak)
    ->Args({1, 1, 1})
    ->Args({2, 4, 1})
    ->Args({2, 4, 2})
    ->Args({4, 8, 2})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The soak under tenant churn: one client streams events to static
/// tenants while a second connection cycles add/remove on ephemeral
/// tenants. Conservation must still hold exactly.
void BM_IngestChurnSoak(benchmark::State& state) {
  constexpr std::size_t kLines = 50000;
  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kCycles = 50;
  const IngestFixture& data = fixture();
  const std::string payload = render_lines(kLines, kTenants, 0);

  for (auto _ : state) {
    serve::ServiceConfig config;
    config.shard_count = 2;
    config.queue_capacity = 8192;
    config.overflow = util::OverflowPolicy::kBlock;
    serve::DetectionService service(config, nullptr);
    auto snapshot =
        serve::make_snapshot(data.model.graph, data.model.score_threshold,
                             data.model.laplace_alpha, 1);
    for (std::size_t i = 0; i < kTenants; ++i) {
      service.add_tenant("t" + std::to_string(i), snapshot,
                         data.initial_state);
    }
    serve::IngestConfig ingest_config;
    ingest_config.model = snapshot;
    ingest_config.initial_state = data.initial_state;
    serve::IngestRouter router(service, data.catalog,
                               std::move(ingest_config));
    net::LineServerConfig line_config;
    line_config.socket.worker_count = 2;
    net::LineProtocolServer tcp(
        line_config, [&router](std::string_view line) {
          return serve::IngestRouter::response_line(
              router.handle_line(line));
        });
    service.start();
    const auto port = tcp.start();
    CAUSALIOT_CHECK(port.ok());

    std::thread churner([&] {
      std::string script;
      for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
        const std::string name = "eph-" + std::to_string(cycle);
        script += "{\"op\": \"add_tenant\", \"tenant\": \"" + name + "\"}\n";
        script +=
            "{\"tenant\": \"" + name +
            "\", \"device\": \"dev_0\", \"value\": 1, \"timestamp\": 1}\n";
        script +=
            "{\"op\": \"remove_tenant\", \"tenant\": \"" + name + "\"}\n";
      }
      CAUSALIOT_CHECK(stream_payload(port.value(), script));
    });
    CAUSALIOT_CHECK(stream_payload(port.value(), payload));
    churner.join();
    tcp.stop();
    service.shutdown();

    const serve::ServiceStats stats = service.stats();
    CAUSALIOT_CHECK(stats.events_submitted ==
                    stats.events_processed + stats.events_orphaned);
    CAUSALIOT_CHECK(stats.tenants_added == kTenants + kCycles);
    CAUSALIOT_CHECK(stats.tenants_removed == kCycles);
    // Queue admissions == events + the 2*kCycles control messages.
    CAUSALIOT_CHECK(stats.queue_accepted ==
                    stats.events_processed + stats.events_orphaned +
                        2 * kCycles);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (kLines + kCycles)));
}
BENCHMARK(BM_IngestChurnSoak)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
