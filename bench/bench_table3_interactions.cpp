// Reproduces Table III: identified device interactions by source (user
// activity sub-categories, physical channel, automation, autocorrelation)
// with example CPT entries like the paper's
// P(S_player^t = 0 | P_curtain^{t-2} = 1) examples.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::print_header("Table III — identified interactions by source", seed);

  core::Experiment ex = bench::contextact_experiment(seed);
  const core::MiningEvaluation eval = core::evaluate_mining(
      ex.model.graph, ex.ground_truth, ex.sim.ground_truth);

  std::printf("%-18s %-18s %10s %10s\n", "Source", "Category", "GroundTruth",
              "Identified");
  bench::print_rule();
  const sim::ActivityCategory categories[] = {
      sim::ActivityCategory::kUseAfterUse,
      sim::ActivityCategory::kUseAfterMove,
      sim::ActivityCategory::kMoveAfterUse,
      sim::ActivityCategory::kMoveAfterMove,
  };
  for (sim::ActivityCategory category : categories) {
    std::printf("%-18s %-18s %10zu %10zu\n", "User Activity",
                std::string(to_string(category)).c_str(),
                ex.ground_truth.count_by_category(category),
                eval.identified_by_category[static_cast<std::size_t>(
                    category)]);
  }
  const sim::InteractionSource sources[] = {
      sim::InteractionSource::kPhysicalChannel,
      sim::InteractionSource::kAutomation,
      sim::InteractionSource::kAutocorrelation,
  };
  for (sim::InteractionSource source : sources) {
    std::printf("%-18s %-18s %10zu %10zu\n",
                std::string(to_string(source)).c_str(), "n/a",
                ex.ground_truth.count_by_source(source),
                eval.identified_by_source[static_cast<std::size_t>(source)]);
  }
  bench::print_rule();

  // Example CPT entries: for a few devices, print the most-supported
  // assignment and its conditional distribution.
  std::printf("\nexample conditional probability tables:\n");
  std::size_t shown = 0;
  for (telemetry::DeviceId child = 0;
       child < ex.catalog().size() && shown < 6; ++child) {
    const graph::Cpt& cpt = ex.model.graph.cpt(child);
    if (cpt.cause_count() == 0 || cpt.counts().empty()) continue;
    // Find the best-supported assignment.
    std::uint64_t best_key = 0;
    double best_support = -1.0;
    for (const auto& [key, counts] : cpt.counts()) {
      const double support = counts[0] + counts[1];
      if (support > best_support) {
        best_support = support;
        best_key = key;
      }
    }
    const util::BitKey key = util::BitKey::from_raw(best_key);
    std::printf("  P(%s^t = 1 |", ex.catalog().info(child).name.c_str());
    for (std::size_t c = 0; c < cpt.causes().size(); ++c) {
      const graph::LaggedNode& cause = cpt.causes()[c];
      std::printf(" %s^{t-%u}=%u", ex.catalog().info(cause.device).name.c_str(),
                  cause.lag, key.get(c) ? 1 : 0);
    }
    std::printf(") = %.3f   (support %.0f)\n",
                cpt.probability(key, 1), best_support);
    ++shown;
  }
  return 0;
}
