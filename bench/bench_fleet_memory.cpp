// Fleet-scale model residency benchmarks (google-benchmark): what one
// deployment pays in model bytes to host N tenants instantiated from a
// single published template, shared (interned skeleton + COW deltas)
// versus private (a full InteractionGraph copy per tenant), and what —
// if anything — the sharing costs in events/sec on the hot path.
//
// The headline counters the perf trajectory tracks:
//   BM_FleetResidency  resident_bytes, dedup_ratio (shared must be
//                      >= 5x smaller than private at 10k tenants),
//                      accounting_exact (service byte accounting equals
//                      the closed-form skeleton + base + N*delta sum)
//   BM_FleetThroughput events/s shared vs private (within 5%)
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "causaliot/core/pipeline.hpp"
#include "causaliot/graph/analysis.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/serve/template_registry.hpp"
#include "causaliot/util/rng.hpp"

namespace {

using namespace causaliot;

// Same synthetic home as bench_serving_throughput: a chain of
// interactions plus noise so the mined DIG has real CPTs to share.
preprocess::StateSeries synthetic_series(std::size_t device_count,
                                         std::size_t event_count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> state(device_count, 0);
  preprocess::StateSeries series(device_count, state);
  telemetry::DeviceId last = 0;
  for (std::size_t j = 0; j < event_count; ++j) {
    telemetry::DeviceId device;
    if (rng.bernoulli(0.6)) {
      device = (last + 1) % static_cast<telemetry::DeviceId>(device_count);
    } else {
      device = static_cast<telemetry::DeviceId>(rng.uniform(device_count));
    }
    state[device] ^= 1;
    series.apply({device, state[device], static_cast<double>(j)});
    last = device;
  }
  return series;
}

struct FleetFixture {
  core::TrainedModel model;
  std::vector<preprocess::BinaryEvent> events;
  std::vector<std::uint8_t> initial_state;
};

const FleetFixture& fixture() {
  static const FleetFixture data = [] {
    FleetFixture out;
    const preprocess::StateSeries series = synthetic_series(22, 20000, 42);
    core::PipelineConfig config;
    config.laplace_alpha = 0.1;
    out.model = core::Pipeline(config).train_on_series(series, 2);
    out.events = series.events();
    out.initial_state = series.snapshot_state(0);
    return out;
  }();
  return data;
}

// Builds a service hosting `fleet` tenants off one published template,
// shared or private per `share`. Registry must outlive the service.
serve::TenantHandle add_fleet(serve::DetectionService& service,
                              std::size_t fleet) {
  const FleetFixture& data = fixture();
  serve::TenantHandle first = serve::DetectionService::kInvalidTenant;
  for (std::size_t i = 0; i < fleet; ++i) {
    const serve::TenantHandle handle = service.add_tenant(
        "home-" + std::to_string(i), "fleet", data.initial_state);
    if (i == 0) first = handle;
  }
  return first;
}

// Residency: bytes to hold the fleet's models, measured by the
// service's component-refcounted accounting and cross-checked against
// the closed-form per-graph memory_footprint() sum. The timed region is
// fleet instantiation (template find + snapshot + accounting), so the
// per-tenant setup cost is visible too.
void BM_FleetResidency(benchmark::State& bench_state) {
  const bool share = bench_state.range(0) != 0;
  const auto fleet = static_cast<std::size_t>(bench_state.range(1));
  const FleetFixture& data = fixture();

  serve::DetectionService::ModelStats stats;
  bool accounting_exact = true;
  for (auto _ : bench_state) {
    serve::TemplateRegistry registry;
    auto tpl = registry.publish("fleet", data.model.graph,
                                data.model.score_threshold,
                                data.model.laplace_alpha, /*version=*/1);
    serve::ServiceConfig config;
    config.shard_count = 4;
    config.templates = &registry;
    config.share_templates = share;
    serve::DetectionService service(config, nullptr);
    add_fleet(service, fleet);
    stats = service.model_stats();
    benchmark::DoNotOptimize(stats.resident_bytes);

    // Conservation identity: the service's running byte total must equal
    // one instantiated graph's footprint split scaled to the fleet.
    const auto one = share ? serve::instantiate(*tpl)
                           : serve::instantiate_private(*tpl);
    const graph::MemoryFootprint foot = graph::memory_footprint(one->graph);
    const std::size_t expected =
        share ? foot.skeleton_bytes + foot.base_cpt_bytes +
                    fleet * foot.delta_cpt_bytes
              : fleet * foot.total_bytes();
    accounting_exact = accounting_exact && stats.resident_bytes == expected;
  }
  bench_state.counters["fleet"] = static_cast<double>(fleet);
  bench_state.counters["shared"] = share ? 1.0 : 0.0;
  bench_state.counters["resident_bytes"] =
      static_cast<double>(stats.resident_bytes);
  bench_state.counters["private_equivalent_bytes"] =
      static_cast<double>(stats.private_equivalent_bytes);
  bench_state.counters["dedup_ratio"] = stats.dedup_ratio;
  bench_state.counters["bytes_per_tenant"] =
      fleet == 0 ? 0.0
                 : static_cast<double>(stats.resident_bytes) /
                       static_cast<double>(fleet);
  bench_state.counters["accounting_exact"] = accounting_exact ? 1.0 : 0.0;
}
BENCHMARK(BM_FleetResidency)
    ->Args({0, 10000})
    ->Args({1, 10000})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Throughput: the detection hot path must not pay for sharing — the
// COW delta lookup is one pointer test per cpt() call. Round-robin the
// event stream over a modest fleet so every shard touches shared state.
void BM_FleetThroughput(benchmark::State& bench_state) {
  const bool share = bench_state.range(0) != 0;
  const auto fleet = static_cast<std::size_t>(bench_state.range(1));
  const FleetFixture& data = fixture();

  std::uint64_t alarms = 0;
  for (auto _ : bench_state) {
    serve::TemplateRegistry registry;
    auto tpl = registry.publish("fleet", data.model.graph,
                                data.model.score_threshold,
                                data.model.laplace_alpha, /*version=*/1);
    benchmark::DoNotOptimize(tpl);
    serve::ServiceConfig config;
    config.shard_count = 4;
    config.queue_capacity = 8192;
    config.templates = &registry;
    config.share_templates = share;
    serve::DetectionService service(config, nullptr);
    std::vector<serve::TenantHandle> handles;
    handles.reserve(fleet);
    for (std::size_t i = 0; i < fleet; ++i) {
      handles.push_back(service.add_tenant("home-" + std::to_string(i),
                                           "fleet", data.initial_state));
    }
    service.start();
    std::size_t next = 0;
    for (const preprocess::BinaryEvent& event : data.events) {
      service.submit(handles[next++ % fleet], event);
    }
    service.shutdown();
    const serve::ServiceStats stats = service.stats();
    benchmark::DoNotOptimize(stats.events_processed);
    alarms = stats.alarms_total;
  }
  bench_state.SetItemsProcessed(static_cast<std::int64_t>(
      bench_state.iterations() * data.events.size()));
  bench_state.counters["fleet"] = static_cast<double>(fleet);
  bench_state.counters["shared"] = share ? 1.0 : 0.0;
  bench_state.counters["alarms"] = static_cast<double>(alarms);
}
BENCHMARK(BM_FleetThroughput)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
