// Ablation benches for the design choices DESIGN.md calls out:
//   * maximum time lag tau (1/2/3),
//   * significance threshold alpha,
//   * score-threshold percentile q,
//   * CPT Laplace smoothing vs pure MLE,
//   * G-square small-sample guard on/off,
//   * Jenks natural breaks vs a plain mean split for ambient states.
// Each row reports mining precision/recall and contextual detection F1 on
// the remote-control attack (the most device-agnostic case).
#include "bench_common.hpp"

#include "causaliot/detect/monitor.hpp"

namespace {

using namespace causaliot;

struct AblationRow {
  const char* label;
  double mining_precision;
  double mining_recall;
  double detect_precision;
  double detect_recall;
  double detect_f1;
};

AblationRow run_variant(const char* label, sim::HomeProfile profile,
                        core::ExperimentConfig config, std::uint64_t seed,
                        double percentile_q) {
  config.seed = seed;
  config.pipeline.percentile_q = percentile_q;
  core::Experiment ex = core::build_experiment(std::move(profile), config);
  const core::MiningEvaluation mining = core::evaluate_mining(
      ex.model.graph, ex.ground_truth, ex.sim.ground_truth);

  const preprocess::StateSeries test =
      core::make_fresh_test_series(ex, /*days=*/14.0, seed ^ 0xF00D);
  inject::AnomalyInjector injector(ex.catalog(), ex.profile,
                                   ex.sim.ground_truth);
  inject::ContextualConfig attack;
  attack.anomaly_case = inject::ContextualCase::kRemoteControl;
  attack.injection_count = 2000;
  attack.seed = seed + 5;
  const inject::InjectionResult stream = injector.inject_contextual(
      test.events(), test.snapshot_state(0), attack);
  const stats::ConfusionCounts counts =
      core::evaluate_contextual(ex.model, stream);

  return {label,           mining.precision,  mining.recall,
          counts.precision(), counts.recall(), counts.f1()};
}

void print_row(const AblationRow& row) {
  std::printf("%-34s %8.3f %8.3f %8.3f %8.3f %8.3f\n", row.label,
              row.mining_precision, row.mining_recall, row.detect_precision,
              row.detect_recall, row.detect_f1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::print_header("Ablations — tau / alpha / q / smoothing / guard /"
                      " discretizer", seed);
  std::printf("(14-day traces per variant to keep the sweep fast)\n\n");
  std::printf("%-34s %8s %8s %8s %8s %8s\n", "variant", "mine-P", "mine-R",
              "det-P", "det-R", "det-F1");
  bench::print_rule();

  const auto base_profile = [] {
    sim::HomeProfile profile = sim::contextact_profile();
    profile.days = 14.0;
    return profile;
  };
  core::ExperimentConfig base;  // paper defaults: tau=2 alpha=0.001 q=99

  // tau sweep.
  for (std::size_t tau : {1, 2, 3}) {
    core::ExperimentConfig config = base;
    config.pipeline.max_lag = tau;
    const std::string label = "tau = " + std::to_string(tau);
    print_row(run_variant(label.c_str(), base_profile(), config, seed, 99.0));
  }
  bench::print_rule();

  // alpha sweep.
  for (double alpha : {0.0001, 0.001, 0.01, 0.05}) {
    core::ExperimentConfig config = base;
    config.pipeline.alpha = alpha;
    char label[64];
    std::snprintf(label, sizeof label, "alpha = %g", alpha);
    print_row(run_variant(label, base_profile(), config, seed, 99.0));
  }
  bench::print_rule();

  // percentile q sweep.
  for (double q : {95.0, 97.0, 99.0, 99.5}) {
    char label[64];
    std::snprintf(label, sizeof label, "q = %.1f", q);
    print_row(run_variant(label, base_profile(), base, seed, q));
  }
  bench::print_rule();

  // Laplace smoothing vs pure MLE (paper's formulation).
  {
    core::ExperimentConfig config = base;
    config.pipeline.laplace_alpha = 0.0;
    print_row(run_variant("pure MLE CPTs (paper Eq. 1)", base_profile(),
                          config, seed, 99.0));
    config.pipeline.laplace_alpha = 0.1;
    print_row(run_variant("Laplace alpha = 0.1 (default)", base_profile(),
                          config, seed, 99.0));
    config.pipeline.laplace_alpha = 1.0;
    print_row(run_variant("Laplace alpha = 1.0", base_profile(), config,
                          seed, 99.0));
  }
  bench::print_rule();

  // Small-sample guard for the G-square test.
  {
    core::ExperimentConfig config = base;
    config.pipeline.min_samples_per_dof = 0.0;
    print_row(run_variant("no small-sample guard", base_profile(), config,
                          seed, 99.0));
    config.pipeline.min_samples_per_dof = 10.0;
    print_row(run_variant("guard = 10 samples/dof (default)",
                          base_profile(), config, seed, 99.0));
  }
  bench::print_rule();

  // PC-stable vs Algorithm 1's immediate-removal order.
  {
    core::ExperimentConfig config = base;
    print_row(run_variant("Algorithm 1 order (default)", base_profile(),
                          config, seed, 99.0));
    config.pipeline.pc_stable = true;
    print_row(run_variant("PC-stable skeleton", base_profile(), config,
                          seed, 99.0));
  }
  bench::print_rule();

  // G-square vs Cochran–Mantel–Haenszel CI test.
  {
    core::ExperimentConfig config = base;
    print_row(run_variant("G-square CI test (paper)", base_profile(),
                          config, seed, 99.0));
    config.pipeline.use_cmh_test = true;
    print_row(run_variant("CMH CI test", base_profile(), config, seed,
                          99.0));
  }
  bench::print_rule();

  // Jenks natural breaks vs mean split: approximate the mean split by
  // zeroing ambient spread sensitivity — we emulate it by overriding the
  // profile's ambient noise so the Jenks cut converges to the mean.
  {
    print_row(run_variant("Jenks discretizer (default)", base_profile(),
                          base, seed, 99.0));
    sim::HomeProfile profile = base_profile();
    // Bimodality collapses when emitters barely move the channel: the
    // natural break degenerates toward a mean split.
    for (auto& emitter : profile.emitters) emitter.lumens *= 0.25;
    print_row(run_variant("weak emitters (mean-like split)", profile, base,
                          seed, 99.0));
  }
  return 0;
}
