// Reproduces the §VI-B interaction-mining evaluation on both testbeds:
// precision/recall of the mined DIG against ground truth, plus the
// rejection breakdown (marginally independent vs spurious-conditional).
//
// Paper reference (ContextAct): 190/196 interactions, precision 95.9%,
// recall 97.0%; 87 candidates rejected as independent and 193 as spurious.
#include "bench_common.hpp"

namespace {

using namespace causaliot;

void evaluate_profile(sim::HomeProfile profile, std::uint64_t seed) {
  const std::string name = profile.name;
  profile.days = 28.0;  // month-scale trace for stable CI tests
  core::Experiment ex =
      core::build_experiment(std::move(profile), bench::paper_config(seed));

  const core::MiningEvaluation eval = core::evaluate_mining(
      ex.model.graph, ex.ground_truth, ex.sim.ground_truth);
  const mining::MiningDiagnostics& diag = ex.model.mining_diagnostics;

  std::printf("\n-- %s --\n", name.c_str());
  std::printf("sanitized events: %zu (train %zu / test %zu), tau=%zu, "
              "alpha=%.4g\n",
              ex.pre.sanitized_events.size(), ex.train_series.event_count(),
              ex.test_series.event_count(), ex.model.lag, 0.001);
  std::printf("ground-truth interactions: %zu; DIG device-level pairs "
              "asserted: %zu\n",
              ex.ground_truth.size(),
              eval.true_positives + eval.false_positives);
  std::printf("identified %zu interactions: precision %.3f recall %.3f\n",
              eval.true_positives, eval.precision, eval.recall);
  std::printf("CI tests run: %zu; candidate lagged edges: %zu\n",
              diag.tests_run, diag.candidate_edges);
  std::printf("rejected candidates: %zu marginally independent, %zu "
              "spurious (conditionally independent)\n",
              diag.removed_marginal(), diag.removed_conditional());
  std::printf("false positives (%zu):", eval.false_positives);
  for (const auto& [cause, child] : eval.false_positive_pairs) {
    std::printf(" %s->%s", ex.catalog().info(cause).name.c_str(),
                ex.catalog().info(child).name.c_str());
  }
  std::printf("\nmissed (%zu):", eval.false_negatives);
  for (const auto& [cause, child] : eval.missed_pairs) {
    std::printf(" %s->%s", ex.catalog().info(cause).name.c_str(),
                ex.catalog().info(child).name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = causaliot::bench::seed_from_args(argc, argv);
  causaliot::bench::print_header(
      "§VI-B — interaction mining accuracy (paper: P 95.9% / R 97.0%)",
      seed);
  evaluate_profile(causaliot::sim::contextact_profile(), seed);
  evaluate_profile(causaliot::sim::casas_profile(), seed);
  return 0;
}
