// Serving-path throughput benchmarks (google-benchmark): events/sec
// through serve::DetectionService as a function of shard and tenant
// count, end to end — submit() through the bounded queue, the shard
// worker's Algorithm 2 step, metrics, and drain-on-shutdown. The
// perf trajectory tracks the single-shard number (target: >= 100k
// events/sec) and the shard-sweep scaling curve.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "causaliot/core/pipeline.hpp"
#include "causaliot/detect/root_cause.hpp"
#include "causaliot/serve/service.hpp"
#include "causaliot/util/rng.hpp"

namespace {

using namespace causaliot;

// Same synthetic home as bench_complexity: a chain of interactions plus
// noise, so the mined DIG has real CPT lookups on the hot path.
preprocess::StateSeries synthetic_series(std::size_t device_count,
                                         std::size_t event_count,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> state(device_count, 0);
  preprocess::StateSeries series(device_count, state);
  telemetry::DeviceId last = 0;
  for (std::size_t j = 0; j < event_count; ++j) {
    telemetry::DeviceId device;
    if (rng.bernoulli(0.6)) {
      device = (last + 1) % static_cast<telemetry::DeviceId>(device_count);
    } else {
      device = static_cast<telemetry::DeviceId>(rng.uniform(device_count));
    }
    state[device] ^= 1;
    series.apply({device, state[device], static_cast<double>(j)});
    last = device;
  }
  return series;
}

struct ServingFixture {
  core::TrainedModel model;
  std::vector<preprocess::BinaryEvent> events;
  std::vector<std::uint8_t> initial_state;
};

const ServingFixture& fixture() {
  static const ServingFixture data = [] {
    ServingFixture out;
    const preprocess::StateSeries series = synthetic_series(22, 20000, 42);
    core::PipelineConfig config;
    config.laplace_alpha = 0.1;
    out.model = core::Pipeline(config).train_on_series(series, 2);
    out.events = series.events();
    out.initial_state = series.snapshot_state(0);
    return out;
  }();
  return data;
}

// One full service lifetime per iteration: events are spread round-robin
// over the tenants, so items processed == events submitted regardless of
// the (shards, tenants) shape.
void BM_ServeThroughput(benchmark::State& bench_state) {
  const auto shard_count = static_cast<std::size_t>(bench_state.range(0));
  const auto tenant_count = static_cast<std::size_t>(bench_state.range(1));
  const ServingFixture& data = fixture();

  std::uint64_t alarms = 0;
  std::uint64_t p99_ns = 0;
  for (auto _ : bench_state) {
    serve::ServiceConfig config;
    config.shard_count = shard_count;
    config.queue_capacity = 8192;
    serve::DetectionService service(config, nullptr);
    std::vector<serve::TenantHandle> handles;
    for (std::size_t i = 0; i < tenant_count; ++i) {
      handles.push_back(service.add_tenant(
          "home-" + std::to_string(i),
          serve::make_snapshot(data.model.graph, data.model.score_threshold,
                               data.model.laplace_alpha, 1),
          data.initial_state));
    }
    service.start();
    std::size_t next = 0;
    for (const preprocess::BinaryEvent& event : data.events) {
      service.submit(handles[next++ % tenant_count], event);
    }
    service.shutdown();
    const serve::ServiceStats stats = service.stats();
    benchmark::DoNotOptimize(stats.events_processed);
    alarms = stats.alarms_total;
    p99_ns = stats.latency.p99;
  }
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations() *
                                data.events.size()));
  bench_state.counters["shards"] = static_cast<double>(shard_count);
  bench_state.counters["tenants"] = static_cast<double>(tenant_count);
  bench_state.counters["alarms"] = static_cast<double>(alarms);
  bench_state.counters["latency_p99_ns"] = static_cast<double>(p99_ns);
}
BENCHMARK(BM_ServeThroughput)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Root-cause attribution cost, alarm path only: the walk runs once per
// closed AnomalyReport (never per event), so this is the marginal price
// an alarm pays on top of Algorithm 2 — the no-alarm hot path above is
// untouched by the localization plane.
void BM_RootCauseAttribution(benchmark::State& bench_state) {
  const ServingFixture& data = fixture();
  detect::EventMonitor monitor =
      data.model.make_monitor(/*k_max=*/3, data.initial_state);
  std::vector<detect::AnomalyReport> reports;
  for (const preprocess::BinaryEvent& event : data.events) {
    if (auto report = monitor.process(event)) {
      reports.push_back(std::move(*report));
    }
  }
  if (auto tail = monitor.finish()) reports.push_back(std::move(*tail));
  if (reports.empty()) {
    bench_state.SkipWithError("fixture raised no alarms");
    return;
  }

  std::size_t candidates = 0;
  std::size_t next = 0;
  for (auto _ : bench_state) {
    const detect::RootCauseAttribution attribution =
        detect::attribute_root_cause(reports[next++ % reports.size()],
                                     &data.model.graph);
    benchmark::DoNotOptimize(attribution.ranked.data());
    candidates = attribution.ranked.size();
  }
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations()));
  bench_state.counters["reports"] = static_cast<double>(reports.size());
  bench_state.counters["last_candidates"] = static_cast<double>(candidates);
}
BENCHMARK(BM_RootCauseAttribution);

// The raw session step without the queue: upper bound for a shard worker.
void BM_SessionProcess(benchmark::State& bench_state) {
  const ServingFixture& data = fixture();
  serve::TenantSession session(
      "solo",
      serve::make_snapshot(data.model.graph, data.model.score_threshold,
                           data.model.laplace_alpha, 1),
      {}, data.initial_state);
  std::size_t next = 0;
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(
        session.process(data.events[next++ % data.events.size()]));
  }
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations()));
}
BENCHMARK(BM_SessionProcess);

}  // namespace

BENCHMARK_MAIN();
