// Reproduces Table I: overview of device information for both testbeds,
// plus the trace statistics the simulator generates in place of the real
// CASAS / ContextAct recordings.
#include "bench_common.hpp"

namespace {

using namespace causaliot;

void print_profile(const sim::HomeProfile& profile, std::uint64_t seed) {
  sim::SmartHomeSimulator simulator(profile, seed);
  const telemetry::DeviceCatalog catalog = simulator.catalog();
  sim::SimulationResult result = simulator.run();

  std::printf("\n-- %s: %zu devices, %.0f days, %zu events\n",
              profile.name.c_str(), catalog.size(), profile.days,
              result.log.size());
  std::printf("   event classes: user=%zu periodic=%zu reactive=%zu "
              "automation=%zu auto-off=%zu duplicates=%zu glitches=%zu\n",
              result.user_events, result.periodic_events,
              result.reactive_sensor_events, result.automation_events,
              result.auto_off_events, result.duplicate_events,
              result.extreme_events);

  std::printf("   %-6s %-18s %-10s %-22s\n", "Abbr.", "Attribute",
              "# devices", "Value type");
  const telemetry::AttributeType types[] = {
      telemetry::AttributeType::kSwitch,
      telemetry::AttributeType::kPresenceSensor,
      telemetry::AttributeType::kContactSensor,
      telemetry::AttributeType::kDimmer,
      telemetry::AttributeType::kWaterMeter,
      telemetry::AttributeType::kPowerSensor,
      telemetry::AttributeType::kBrightnessSensor,
  };
  for (telemetry::AttributeType type : types) {
    const std::size_t count = catalog.devices_of_type(type).size();
    if (count == 0) continue;
    const char* value_type = "Discrete";
    switch (telemetry::default_value_type(type)) {
      case telemetry::ValueType::kBinary: value_type = "Discrete"; break;
      case telemetry::ValueType::kResponsiveNumeric:
        value_type = "Responsive Numeric";
        break;
      case telemetry::ValueType::kAmbientNumeric:
        value_type = "Ambient Numeric";
        break;
    }
    std::printf("   %-6s %-18s %-10zu %-22s\n",
                std::string(telemetry::attribute_abbreviation(type)).c_str(),
                std::string(telemetry::attribute_name(type)).c_str(), count,
                value_type);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = causaliot::bench::seed_from_args(argc, argv);
  causaliot::bench::print_header(
      "Table I — testbed device overview (synthetic stand-ins)", seed);
  std::printf("(paper: CASAS 8 devices / 32,388 events / 30 days;\n"
              " ContextAct 22 devices / 54,748 events / 7 days)\n");
  print_profile(causaliot::sim::casas_profile(), seed);
  print_profile(causaliot::sim::contextact_profile(), seed);
  return 0;
}
