// Reproduces Table II: the automation rules installed on the ContextAct
// testbed, with the live execution counts our automation engine produced
// (the paper injects 5,004 rule-execution events; we run the rules live).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::print_header("Table II — installed automation rules", seed);

  sim::HomeProfile profile = sim::contextact_profile();
  profile.days = 28.0;
  sim::SmartHomeSimulator simulator(profile, seed);
  sim::SimulationResult result = simulator.run();

  std::size_t total = 0;
  std::printf("%-5s %-48s %8s\n", "Rule", "Trigger -> Action", "Fires");
  bench::print_rule();
  for (std::size_t i = 0; i < profile.rules.size(); ++i) {
    const sim::AutomationRule& rule = profile.rules[i];
    total += result.rule_fire_counts[i];
    std::printf("%-5s if %s becomes %u, set %s to %g %12zu\n",
                rule.id.c_str(), rule.trigger_device.c_str(),
                rule.trigger_state, rule.action_device.c_str(),
                rule.action_value, result.rule_fire_counts[i]);
  }
  bench::print_rule();
  std::printf("total rule executions over %.0f days: %zu\n", profile.days,
              total);
  std::printf("chained rules: R6->R7 (direct), R1->R10 (trigger-action),\n"
              "R4/R10 -> bright_kitchen High -> R5 (physical channel)\n");
  return 0;
}
