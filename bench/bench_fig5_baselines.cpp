// Reproduces Figure 5: CausalIoT vs the three baseline detectors
// (k-th-order Markov chain, one-class SVM, HAWatcher-style rules) on the
// four contextual anomaly cases.
//
// Paper shape: CausalIoT best on every case; Markov good recall but many
// false alarms from disordered events; OCSVM decent recall with ~56%
// average false positives; HAWatcher lowest accuracy (background-knowledge
// gate rejects useful interactions).
#include "bench_common.hpp"

#include "causaliot/baselines/hawatcher.hpp"
#include "causaliot/baselines/markov.hpp"
#include "causaliot/baselines/ocsvm.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::print_header("Figure 5 — baseline comparison", seed);

  core::Experiment ex = bench::contextact_experiment(seed);
  const preprocess::StateSeries test =
      core::make_fresh_test_series(ex, /*days=*/35.0, seed ^ 0xABCDEF);
  inject::AnomalyInjector injector(ex.catalog(), ex.profile,
                                   ex.sim.ground_truth);

  // Train the baselines on the identical training series.
  baselines::MarkovDetector markov(ex.model.lag);
  markov.fit(ex.train_series);
  baselines::OcsvmDetector ocsvm;
  ocsvm.fit(ex.train_series);
  baselines::HaWatcherDetector hawatcher(ex.catalog());
  hawatcher.fit(ex.train_series);
  std::printf("markov transitions: %zu | ocsvm SVs: %zu | hawatcher rules: "
              "%zu (rejected by background knowledge: %zu)\n",
              markov.transition_count(), ocsvm.support_vector_count(),
              hawatcher.rules().size(),
              hawatcher.rejected_by_background_knowledge());

  const inject::ContextualCase cases[] = {
      inject::ContextualCase::kSensorFault,
      inject::ContextualCase::kBurglarIntrusion,
      inject::ContextualCase::kRemoteControl,
      inject::ContextualCase::kMaliciousRule,
  };

  std::printf("\n%-20s %-12s %9s %9s %9s %9s\n", "Case", "Detector",
              "Accuracy", "Precision", "Recall", "F1");
  bench::print_rule();
  for (std::size_t c = 0; c < std::size(cases); ++c) {
    inject::ContextualConfig config;
    config.anomaly_case = cases[c];
    config.injection_count = 5000;
    config.seed = seed + 17 * (c + 1);
    const inject::InjectionResult stream = injector.inject_contextual(
        test.events(), test.snapshot_state(0), config);

    struct Entry {
      const char* name;
      stats::ConfusionCounts counts;
    };
    Entry entries[] = {
        {"CausalIoT", core::evaluate_contextual(ex.model, stream)},
        {"Markov", core::evaluate_baseline(markov, stream)},
        {"OCSVM", core::evaluate_baseline(ocsvm, stream)},
        {"HAWatcher", core::evaluate_baseline(hawatcher, stream)},
    };
    for (const Entry& entry : entries) {
      std::printf("%-20s %-12s %9.3f %9.3f %9.3f %9.3f\n",
                  std::string(to_string(cases[c])).c_str(), entry.name,
                  entry.counts.accuracy(), entry.counts.precision(),
                  entry.counts.recall(), entry.counts.f1());
    }
    bench::print_rule();
  }
  return 0;
}
