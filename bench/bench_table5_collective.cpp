// Reproduces Table V: collective anomaly detection for the three malicious
// cases (burglar wandering, illegal actuator operations, chained
// automation rules) at k_max in {2, 3, 4}.
//
// Paper reference: avg. anomaly length ~= 2.0 / 2.5 / 3.0, % detected
// 84.3-98.7 (avg 91.9%), % tracked within 0-6 points of % detected,
// avg. detection length within ~0.17 events of the anomaly length.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace causaliot;
  const std::uint64_t seed = bench::seed_from_args(argc, argv);
  bench::print_header("Table V — collective anomaly detection", seed);

  core::Experiment ex = bench::contextact_experiment(seed);
  // Independent held-out stream, long enough for the paper's campaign
  // sizes (5,000 injection positions / 1,000 chains).
  const preprocess::StateSeries test =
      core::make_fresh_test_series(ex, /*days=*/35.0, seed ^ 0xABCDEF);
  inject::AnomalyInjector injector(ex.catalog(), ex.profile,
                                   ex.sim.ground_truth);

  struct Row {
    inject::CollectiveCase anomaly_case;
    const char* description;
  };
  const Row rows[] = {
      {inject::CollectiveCase::kBurglarWandering, "Burglar Wandering"},
      {inject::CollectiveCase::kActuatorManipulation,
       "Illegal Actuator Operations"},
      {inject::CollectiveCase::kChainedAutomation, "Chained Automation Rules"},
  };

  std::printf("%-28s %5s %7s %10s %10s %10s %10s\n", "Case", "k_max",
              "Chains", "AvgLen", "%Detected", "%Tracked", "AvgDetLen");
  bench::print_rule();
  double detected_sum = 0.0;
  std::size_t cells = 0;
  for (const Row& row : rows) {
    for (std::size_t k_max = 2; k_max <= 4; ++k_max) {
      inject::CollectiveConfig config;
      config.anomaly_case = row.anomaly_case;
      config.chain_count = 1000;
      config.k_max = k_max;
      config.seed = seed + 31 * k_max +
                    101 * static_cast<std::size_t>(row.anomaly_case);
      const inject::InjectionResult stream = injector.inject_collective(
          test.events(), test.snapshot_state(0), config);
      const core::CollectiveEvaluation eval =
          core::evaluate_collective(ex.model, stream, k_max);
      detected_sum += eval.detected_fraction();
      ++cells;
      std::printf("%-28s %5zu %7zu %10.3f %9.1f%% %9.1f%% %10.3f\n",
                  row.description, k_max, eval.total_chains,
                  eval.avg_anomaly_length, 100.0 * eval.detected_fraction(),
                  100.0 * eval.tracked_fraction(), eval.avg_detection_length);
    }
  }
  bench::print_rule();
  std::printf("average %% detected: %.1f%%   (paper: 91.9%%)\n",
              100.0 * detected_sum / static_cast<double>(cells));
  return 0;
}
